(* A small reusable domain pool for data-parallel loops and background
   tasks (OCaml 5 domains).

   The UPMEM machine simulator executes every DPU of a launch through this
   pool; real hardware runs all DPUs concurrently, and the simulation is
   embarrassingly parallel at DPU granularity. The serve daemon also
   multiplexes whole requests over the same pool as *tasks*: a submitted
   task occupies one worker for its duration, and any parallel-for the
   task issues (a simulated launch) is served by whichever workers are
   free at that moment — so request concurrency and per-request simulation
   parallelism share one fixed set of domains.

   Primitives:
   - [run]: one parallel-for over [0, n), the calling domain participates;
     sequential fallback whenever parallelism cannot help (1 job, 1 item)
     or would be unsafe (re-entrant use while another loop is in flight).
   - [submit]: enqueue an independent task; workers prefer parallel-for
     indices (they are short and a caller is blocked on them) and drain
     tasks otherwise. Returns [false] once shutdown has begun.

   Sizing: [CINM_JOBS] in the environment, or [set_default_jobs] (the
   bench harness's [--jobs] flag), or [Domain.recommended_domain_count].

   Determinism: [run] only schedules; callers index into pre-allocated
   result slots, so the output of a parallel loop is independent of the
   interleaving.

   Shutdown is graceful and idempotent: the first [shutdown] call rejects
   all further submissions, lets the in-flight parallel-for and every
   already-accepted task finish (workers drain the queue before exiting),
   and joins the workers; later calls return immediately. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  (* current parallel-for, guarded by [mutex] *)
  mutable body : (int -> unit) option;
  mutable next : int;  (** next index to claim *)
  mutable total : int;
  mutable unfinished : int;  (** claimed-or-unclaimed indices not yet done *)
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable busy : bool;  (** a [run] is in flight (re-entrancy guard) *)
  (* background tasks, guarded by [mutex] *)
  tasks : (unit -> unit) Queue.t;
  mutable active_tasks : int;  (** claimed tasks currently executing *)
  mutable shutting_down : bool;
  mutable shutdown_done : bool;  (** a shutdown call already ran to completion *)
  mutable workers : unit Domain.t list;  (** spawned lazily *)
}

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  {
    jobs;
    mutex = Mutex.create ();
    has_work = Condition.create ();
    all_done = Condition.create ();
    body = None;
    next = 0;
    total = 0;
    unfinished = 0;
    exn = None;
    busy = false;
    tasks = Queue.create ();
    active_tasks = 0;
    shutting_down = false;
    shutdown_done = false;
    workers = [];
  }

let jobs p = p.jobs

(* Run one claimed index outside the lock; record the first exception. *)
let run_index p f i =
  Mutex.unlock p.mutex;
  let failure =
    try
      f i;
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock p.mutex;
  (match failure with
  | Some _ when p.exn = None -> p.exn <- failure
  | _ -> ());
  p.unfinished <- p.unfinished - 1;
  if p.unfinished = 0 then Condition.broadcast p.all_done

(* Run one claimed task outside the lock. A task owns its own error
   handling (the daemon wraps every request); anything that still escapes
   is contained here so a misbehaving task can never kill its worker. *)
let run_task p task =
  p.active_tasks <- p.active_tasks + 1;
  Mutex.unlock p.mutex;
  (try task ()
   with e -> Log.warn "pool task raised: %s" (Printexc.to_string e));
  Mutex.lock p.mutex;
  p.active_tasks <- p.active_tasks - 1

let worker_loop p =
  Mutex.lock p.mutex;
  let stop = ref false in
  while not !stop do
    match p.body with
    | Some f when p.next < p.total ->
      let i = p.next in
      p.next <- p.next + 1;
      run_index p f i
    | _ ->
      if not (Queue.is_empty p.tasks) then run_task p (Queue.pop p.tasks)
      else if p.shutting_down then stop := true
      else Condition.wait p.has_work p.mutex
  done;
  Mutex.unlock p.mutex

(* Must be called with the mutex held. [min_workers] lets [submit] insist
   on at least one worker even on a 1-job pool, so tasks always make
   progress (parallel-for on a 1-job pool stays sequential regardless). *)
let ensure_workers ?(min_workers = 0) p =
  if p.workers = [] && not p.shutting_down then begin
    let n = max min_workers (p.jobs - 1) in
    if n > 0 then
      p.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop p))
  end

let submit p task =
  Mutex.lock p.mutex;
  if p.shutting_down then begin
    Mutex.unlock p.mutex;
    false
  end
  else begin
    Queue.push task p.tasks;
    ensure_workers ~min_workers:1 p;
    Condition.broadcast p.has_work;
    Mutex.unlock p.mutex;
    true
  end

let pending p =
  Mutex.lock p.mutex;
  let n = Queue.length p.tasks + p.active_tasks in
  Mutex.unlock p.mutex;
  n

type stats = { st_jobs : int; st_queued : int; st_active : int; st_par_busy : bool }

let stats p =
  Mutex.lock p.mutex;
  let s =
    {
      st_jobs = p.jobs;
      st_queued = Queue.length p.tasks;
      st_active = p.active_tasks;
      st_par_busy = p.busy;
    }
  in
  Mutex.unlock p.mutex;
  s

let shutdown p =
  Mutex.lock p.mutex;
  if p.shutdown_done then Mutex.unlock p.mutex
  else begin
    p.shutdown_done <- true;
    p.shutting_down <- true;
    Condition.broadcast p.has_work;
    let workers = p.workers in
    p.workers <- [];
    Mutex.unlock p.mutex;
    (* workers drain the task queue before exiting, so joining them is the
       drain barrier *)
    List.iter Domain.join workers;
    (* a 0-worker pool (jobs = 1, nothing ever submitted) has no one to
       drain a queue for; run anything still queued here so accepted work
       is never dropped *)
    Mutex.lock p.mutex;
    while not (Queue.is_empty p.tasks) do
      run_task p (Queue.pop p.tasks)
    done;
    Mutex.unlock p.mutex
  end

let shutting_down p =
  Mutex.lock p.mutex;
  let s = p.shutting_down in
  Mutex.unlock p.mutex;
  s

(* Apply [f] to every index in [0, n), possibly in parallel. Blocks until
   all calls completed; re-raises the first exception any of them threw. *)
let run p n f =
  if n > 0 then begin
    Mutex.lock p.mutex;
    if p.jobs <= 1 || n <= 1 || p.busy || p.shutting_down then begin
      Mutex.unlock p.mutex;
      for i = 0 to n - 1 do
        f i
      done
    end
    else begin
      ensure_workers p;
      p.busy <- true;
      p.body <- Some f;
      p.next <- 0;
      p.total <- n;
      p.unfinished <- n;
      p.exn <- None;
      Condition.broadcast p.has_work;
      (* the calling domain participates in the loop *)
      while p.next < p.total do
        let i = p.next in
        p.next <- p.next + 1;
        run_index p f i
      done;
      while p.unfinished > 0 do
        Condition.wait p.all_done p.mutex
      done;
      p.body <- None;
      p.busy <- false;
      let failure = p.exn in
      p.exn <- None;
      Mutex.unlock p.mutex;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ----- the process-wide default pool ----- *)

let env_jobs () =
  match Sys.getenv_opt "CINM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    (* 0 = auto-detect, same as unset: size by the machine *)
    | Some 0 -> Some (Domain.recommended_domain_count ())
    | _ -> None)
  | None -> None

let default_pool : t option ref = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ?jobs:(env_jobs ()) () in
    default_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let set_default_jobs j =
  (match !default_pool with Some p -> shutdown p | None -> ());
  (* 0 = auto-detect: size by the machine, like an unset CINM_JOBS *)
  let jobs = if j <= 0 then Domain.recommended_domain_count () else j in
  let p = create ~jobs () in
  default_pool := Some p;
  at_exit (fun () -> shutdown p)

let default_jobs () = jobs (default ())
