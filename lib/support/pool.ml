(* A small reusable domain pool for data-parallel loops (OCaml 5 domains).

   The UPMEM machine simulator executes every DPU of a launch through this
   pool; real hardware runs all DPUs concurrently, and the simulation is
   embarrassingly parallel at DPU granularity. The pool is deliberately
   minimal: one parallel-for primitive over [0, n), a fixed set of worker
   domains spawned lazily on first use, and a sequential fallback whenever
   parallelism cannot help (1 job, 1 item) or would be unsafe (re-entrant
   use from inside a worker).

   Sizing: [CINM_JOBS] in the environment, or [set_default_jobs] (the
   bench harness's [--jobs] flag), or [Domain.recommended_domain_count].

   Determinism: [run] only schedules; callers index into pre-allocated
   result slots, so the output of a parallel loop is independent of the
   interleaving. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  (* current parallel-for, guarded by [mutex] *)
  mutable body : (int -> unit) option;
  mutable next : int;  (** next index to claim *)
  mutable total : int;
  mutable unfinished : int;  (** claimed-or-unclaimed indices not yet done *)
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable busy : bool;  (** a [run] is in flight (re-entrancy guard) *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;  (** spawned lazily *)
}

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  {
    jobs;
    mutex = Mutex.create ();
    has_work = Condition.create ();
    all_done = Condition.create ();
    body = None;
    next = 0;
    total = 0;
    unfinished = 0;
    exn = None;
    busy = false;
    shutting_down = false;
    workers = [];
  }

let jobs p = p.jobs

(* Run one claimed index outside the lock; record the first exception. *)
let run_index p f i =
  Mutex.unlock p.mutex;
  let failure =
    try
      f i;
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock p.mutex;
  (match failure with
  | Some _ when p.exn = None -> p.exn <- failure
  | _ -> ());
  p.unfinished <- p.unfinished - 1;
  if p.unfinished = 0 then Condition.broadcast p.all_done

let worker_loop p =
  Mutex.lock p.mutex;
  let stop = ref false in
  while not !stop do
    if p.shutting_down then stop := true
    else
      match p.body with
      | Some f when p.next < p.total ->
        let i = p.next in
        p.next <- p.next + 1;
        run_index p f i
      | _ -> Condition.wait p.has_work p.mutex
  done;
  Mutex.unlock p.mutex

(* Must be called with the mutex held. *)
let ensure_workers p =
  if p.workers = [] && p.jobs > 1 then
    p.workers <- List.init (p.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p))

let shutdown p =
  Mutex.lock p.mutex;
  p.shutting_down <- true;
  Condition.broadcast p.has_work;
  let workers = p.workers in
  p.workers <- [];
  Mutex.unlock p.mutex;
  List.iter Domain.join workers

(* Apply [f] to every index in [0, n), possibly in parallel. Blocks until
   all calls completed; re-raises the first exception any of them threw. *)
let run p n f =
  if n > 0 then begin
    Mutex.lock p.mutex;
    if p.jobs <= 1 || n <= 1 || p.busy || p.shutting_down then begin
      Mutex.unlock p.mutex;
      for i = 0 to n - 1 do
        f i
      done
    end
    else begin
      ensure_workers p;
      p.busy <- true;
      p.body <- Some f;
      p.next <- 0;
      p.total <- n;
      p.unfinished <- n;
      p.exn <- None;
      Condition.broadcast p.has_work;
      (* the calling domain participates in the loop *)
      while p.next < p.total do
        let i = p.next in
        p.next <- p.next + 1;
        run_index p f i
      done;
      while p.unfinished > 0 do
        Condition.wait p.all_done p.mutex
      done;
      p.body <- None;
      p.busy <- false;
      let failure = p.exn in
      p.exn <- None;
      Mutex.unlock p.mutex;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ----- the process-wide default pool ----- *)

let env_jobs () =
  match Sys.getenv_opt "CINM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)
  | None -> None

let default_pool : t option ref = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ?jobs:(env_jobs ()) () in
    default_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let set_default_jobs j =
  (match !default_pool with Some p -> shutdown p | None -> ());
  let p = create ~jobs:(max 1 j) () in
  default_pool := Some p;
  at_exit (fun () -> shutdown p)

let default_jobs () = jobs (default ())
