(** A small reusable domain pool for data-parallel loops.

    [run p n f] applies [f] to every index in [0, n), distributing the
    calls over the pool's domains (the calling domain participates). It
    returns once every call has completed and re-raises the first
    exception raised by any call. Scheduling never affects results as
    long as distinct indices touch disjoint state: callers write into
    pre-allocated per-index slots, so outputs are deterministic. *)

type t

(** [create ?jobs ()] makes a pool of [jobs] domains (including the
    caller); defaults to [Domain.recommended_domain_count]. Worker
    domains are spawned lazily on first parallel [run]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

val run : t -> int -> (int -> unit) -> unit

(** Wake and join all worker domains. The pool afterwards degrades to
    sequential execution. *)
val shutdown : t -> unit

(** The process-wide pool, sized by [CINM_JOBS] when set (and valid),
    else [Domain.recommended_domain_count]. Created on first use; torn
    down via [at_exit]. *)
val default : unit -> t

(** Replace the default pool with one of the given size (the [--jobs]
    flag of the bench harness). *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int
