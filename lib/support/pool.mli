(** A small reusable domain pool for data-parallel loops and background
    tasks.

    [run p n f] applies [f] to every index in [0, n), distributing the
    calls over the pool's domains (the calling domain participates). It
    returns once every call has completed and re-raises the first
    exception raised by any call. Scheduling never affects results as
    long as distinct indices touch disjoint state: callers write into
    pre-allocated per-index slots, so outputs are deterministic.

    [submit p task] enqueues an independent background task (the serve
    daemon's unit of request execution). Workers prefer parallel-for
    indices over tasks, so a task that issues [run] internally is served
    by whichever workers are free. *)

type t

(** [create ?jobs ()] makes a pool of [jobs] domains (including the
    caller); defaults to [Domain.recommended_domain_count]. Worker
    domains are spawned lazily on first parallel [run] or [submit]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

val run : t -> int -> (int -> unit) -> unit

(** Enqueue a background task; at least one worker domain is spawned even
    on a 1-job pool so tasks always make progress. Returns [false] (task
    not accepted) once {!shutdown} has begun. A task that raises is
    contained and logged; it can never kill its worker. *)
val submit : t -> (unit -> unit) -> bool

(** Tasks accepted but not yet finished (queued + executing). *)
val pending : t -> int

(** One consistent sample of the pool's load, for gauges: worker count,
    tasks still queued, tasks executing, and whether a parallel-for is
    in flight. *)
type stats = { st_jobs : int; st_queued : int; st_active : int; st_par_busy : bool }

val stats : t -> stats

(** Graceful shutdown: reject all further submissions, let the in-flight
    parallel-for and every accepted task finish (workers drain the queue
    before exiting), then join the workers. Idempotent — later calls
    return immediately. The pool afterwards degrades to sequential
    execution for [run]. *)
val shutdown : t -> unit

(** True once {!shutdown} has begun ([submit] will refuse). *)
val shutting_down : t -> bool

(** The process-wide pool, sized by [CINM_JOBS] when set (and valid),
    else [Domain.recommended_domain_count]. [CINM_JOBS=0] means
    auto-detect — the same machine-sized default as leaving it unset.
    Created on first use; torn down via [at_exit]. *)
val default : unit -> t

(** Replace the default pool with one of the given size (the [--jobs]
    flag of the bench harness); [0] auto-detects
    [Domain.recommended_domain_count]. *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int
