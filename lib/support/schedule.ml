(* Simulated-time schedule merge for heterogeneous multi-device runs.

   Each machine simulator appends one event per timed device operation
   (scatter, kernel launch, gather, crossbar program, CAM search, ...) to
   its event log; the async executor slices those logs per top-level op
   and feeds them here together with the op-level dependency DAG. The
   merge then replays the same events under two disciplines:

   - sequential: every event waits for the previous one — the end-to-end
     time is the plain sum of all durations, matching what the one-stream
     driver reports today;
   - overlapped: events only wait for (a) their op's dependencies, (b)
     their channel (each machine exposes independent h2d / kernel / d2h
     engines, so DMA overlaps compute), (c) the buffers they touch (RAW:
     a kernel cannot start before its scatter landed), and (d) a
     double-buffering window: a host->device transfer may run ahead of
     the compute stream by at most [dma_depth] kernels, modelling the
     two staging buffers of a double-buffered DMA engine.

   Both disciplines replay the *same* events in the *same* per-machine
   order, so the merge is a pure function of the logs: simulated numbers
   are bit-identical for any host job count, and the overlapped makespan
   is by construction >= every single channel's busy time and <= the
   sequential sum. *)

type kind =
  | Dma_in  (** host -> device transfer (scatter, input staging) *)
  | Compute  (** device-side work (kernel, MVM, search) *)
  | Dma_out  (** device -> host transfer (gather, result read-out) *)
  | Host  (** host-side orchestration/compute between device ops *)

type ev = {
  chan : string;  (** engine within the machine; events on one channel serialize *)
  kind : kind;
  dur_s : float;
  bufs : int list;  (** machine-local buffer ids this event touches (RAW/WAR) *)
  label : string;
}

(** One schedulable unit: a top-level op with its dependencies (indices of
    earlier nodes) and the (machine, event) pairs it emitted, in emission
    order. The host work of the op is just another event (machine "cpu"). *)
type node = {
  n_id : int;
  n_deps : int list;
  n_events : (string * ev) list;
}

type track = {
  tr_machine : string;
  tr_compute_s : float;
  tr_dma_s : float;
  tr_idle_s : float;  (** overlapped makespan minus this machine's busy time *)
}

type summary = {
  e2e_s : float;  (** overlapped (critical-path) end-to-end simulated time *)
  seq_s : float;  (** sequential single-stream sum of the same events *)
  max_channel_busy_s : float;  (** busiest single engine; lower bound on e2e_s *)
  tracks : track list;  (** per machine, in first-appearance order *)
}

let host_machine = "cpu"

let host_event dur_s =
  (host_machine, { chan = "cpu"; kind = Host; dur_s; bufs = []; label = "host" })

(* One placed event of the overlapped replay, for timeline inspection. *)
type placed = {
  p_node : int;
  p_machine : string;
  p_chan : string;
  p_kind : kind;
  p_label : string;
  p_start_s : float;
  p_finish_s : float;
}

(* Replay the event logs under one discipline; returns the makespan.

   The overlapped replay is event-driven: every node whose dependencies
   have fully retired exposes its next unissued event, and the feasible
   event with the earliest start is placed (ties broken by node id, then
   emission order — a pure function of the logs). Issue order is by
   *readiness*, not program order, so a node that became ready early is
   never head-of-line blocked on a shared channel by a later-listed node
   that started late; intra-node emission order and per-channel
   serialization still hold, and the makespan stays bounded by the
   sequential sum (every start is a max over already-placed finishes). *)
let makespan ?record ?(overlap = true) ?(dma_depth = 2) (nodes : node list) =
  let channel_free : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
  let buf_avail : (string * int, float) Hashtbl.t = Hashtbl.create 64 in
  (* per machine: finish times of its Compute events, in issue order *)
  let compute_ends : (string, float Vec.t) Hashtbl.t = Hashtbl.create 8 in
  let total_end = ref 0.0 in
  let place (n : node) ((mach, e) : string * ev) start =
    let fin = start +. e.dur_s in
    (match record with
    | Some vec ->
      Vec.push vec
        {
          p_node = n.n_id;
          p_machine = mach;
          p_chan = e.chan;
          p_kind = e.kind;
          p_label = e.label;
          p_start_s = start;
          p_finish_s = fin;
        }
    | None -> ());
    Hashtbl.replace channel_free (mach, e.chan) fin;
    List.iter (fun b -> Hashtbl.replace buf_avail (mach, b) fin) e.bufs;
    if e.kind = Compute then begin
      let ends =
        match Hashtbl.find_opt compute_ends mach with
        | Some v -> v
        | None ->
          let v = Vec.create () in
          Hashtbl.replace compute_ends mach v;
          v
      in
      Vec.push ends fin
    end;
    if fin > !total_end then total_end := fin;
    fin
  in
  if not overlap then begin
    (* single stream: every event waits for the previous one *)
    let op_finish = Hashtbl.create 64 in
    let prev_end = ref 0.0 in
    List.iter
      (fun n ->
        let ready =
          List.fold_left
            (fun acc d ->
              match Hashtbl.find_opt op_finish d with
              | Some t -> Float.max acc t
              | None -> acc)
            0.0 n.n_deps
        in
        let nf = ref ready in
        List.iter
          (fun ev ->
            let fin = place n ev (Float.max ready !prev_end) in
            prev_end := fin;
            if fin > !nf then nf := fin)
          n.n_events;
        Hashtbl.replace op_finish n.n_id !nf)
      nodes;
    !total_end
  end
  else begin
    let arr = Array.of_list nodes in
    let n_nodes = Array.length arr in
    let events = Array.map (fun n -> Array.of_list n.n_events) arr in
    let next_ev = Array.make n_nodes 0 in
    let pos_of_id = Hashtbl.create (max 1 n_nodes) in
    Array.iteri (fun i n -> Hashtbl.replace pos_of_id n.n_id i) arr;
    let node_finish = Array.make n_nodes 0.0 in
    let retired = Array.make n_nodes false in
    (* ready time of node i, or None while some dependency is unretired *)
    let ready_time i =
      let ok = ref true and t = ref 0.0 in
      List.iter
        (fun d ->
          match Hashtbl.find_opt pos_of_id d with
          | Some j ->
            if retired.(j) then t := Float.max !t node_finish.(j)
            else ok := false
          | None -> ())
        arr.(i).n_deps;
      if !ok then Some !t else None
    in
    (* event-less nodes retire the moment their dependencies have *)
    let rec retire_eventless () =
      let changed = ref false in
      Array.iteri
        (fun i _ ->
          if (not retired.(i)) && next_ev.(i) >= Array.length events.(i) then
            match ready_time i with
            | Some t ->
              node_finish.(i) <- Float.max node_finish.(i) t;
              retired.(i) <- true;
              changed := true
            | None -> ())
        arr;
      if !changed then retire_eventless ()
    in
    retire_eventless ();
    let remaining = ref 0 in
    Array.iter (fun evs -> remaining := !remaining + Array.length evs) events;
    while !remaining > 0 do
      let best = ref None in
      Array.iteri
        (fun i _ ->
          if (not retired.(i)) && next_ev.(i) < Array.length events.(i) then
            match ready_time i with
            | None -> ()
            | Some ready ->
              let mach, e = events.(i).(next_ev.(i)) in
              let s = ref ready in
              (match Hashtbl.find_opt channel_free (mach, e.chan) with
              | Some t -> s := Float.max !s t
              | None -> ());
              List.iter
                (fun b ->
                  match Hashtbl.find_opt buf_avail (mach, b) with
                  | Some t -> s := Float.max !s t
                  | None -> ())
                e.bufs;
              (* double buffering: the k-th upcoming kernel's input may
                 stage while kernels k-1 .. k-dma_depth+1 run, but not
                 before kernel k-dma_depth retired its buffers *)
              (if e.kind = Dma_in then
                 match Hashtbl.find_opt compute_ends mach with
                 | Some ends when Vec.length ends >= dma_depth ->
                   s :=
                     Float.max !s (Vec.get ends (Vec.length ends - dma_depth))
                 | _ -> ());
              (match !best with
              | Some (_, bs) when bs <= !s -> ()
              | _ -> best := Some (i, !s)))
        arr;
      match !best with
      | Some (i, s) ->
        let fin = place arr.(i) events.(i).(next_ev.(i)) s in
        node_finish.(i) <- Float.max node_finish.(i) fin;
        next_ev.(i) <- next_ev.(i) + 1;
        decr remaining;
        if next_ev.(i) >= Array.length events.(i) then begin
          retired.(i) <- true;
          retire_eventless ()
        end
      | None ->
        (* malformed DAG (a dep that never retires): place whatever is
           left in program order so the replay always terminates *)
        Array.iteri
          (fun i _ ->
            while next_ev.(i) < Array.length events.(i) do
              let fin = place arr.(i) events.(i).(next_ev.(i)) !total_end in
              node_finish.(i) <- Float.max node_finish.(i) fin;
              next_ev.(i) <- next_ev.(i) + 1;
              decr remaining
            done;
            retired.(i) <- true)
          arr
    done;
    !total_end
  end

(* The overlapped replay's placed events, in issue order: who ran what,
   when, on which engine. Feeds trace output and the scheduling tests. *)
let timeline ?(dma_depth = 2) (nodes : node list) =
  let vec = Vec.create () in
  ignore (makespan ~record:vec ~overlap:true ~dma_depth nodes);
  Vec.to_list vec

let summarize ?(dma_depth = 2) (nodes : node list) =
  let e2e_s = makespan ~overlap:true ~dma_depth nodes in
  let seq_s = makespan ~overlap:false ~dma_depth nodes in
  (* per-machine busy buckets and per-channel busy sums, in order *)
  let order = Vec.create () in
  let busy : (string, float * float) Hashtbl.t = Hashtbl.create 8 in
  let chan_busy : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun n ->
      List.iter
        (fun (mach, e) ->
          if not (Hashtbl.mem busy mach) then begin
            Vec.push order mach;
            Hashtbl.replace busy mach (0.0, 0.0)
          end;
          let c, d = Hashtbl.find busy mach in
          (match e.kind with
          | Compute | Host -> Hashtbl.replace busy mach (c +. e.dur_s, d)
          | Dma_in | Dma_out -> Hashtbl.replace busy mach (c, d +. e.dur_s));
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt chan_busy (mach, e.chan))
          in
          Hashtbl.replace chan_busy (mach, e.chan) (prev +. e.dur_s))
        n.n_events)
    nodes;
  let max_channel_busy_s =
    Hashtbl.fold (fun _ t acc -> Float.max t acc) chan_busy 0.0
  in
  let tracks =
    List.map
      (fun mach ->
        let c, d = Hashtbl.find busy mach in
        {
          tr_machine = mach;
          tr_compute_s = c;
          tr_dma_s = d;
          tr_idle_s = Float.max 0.0 (e2e_s -. c -. d);
        })
      (Vec.to_list order)
  in
  { e2e_s; seq_s; max_channel_busy_s; tracks }
