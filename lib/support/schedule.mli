(** Simulated-time schedule merge for heterogeneous multi-device runs.

    Machine simulators log one {!ev} per timed device operation; the
    async executor groups them into {!node}s (one per top-level op, with
    the op-level dependency DAG) and {!summarize} replays them twice —
    once strictly sequentially, once overlapped (independent per-machine
    channels, buffer RAW hazards, a [dma_depth]-deep double-buffering
    window for host->device transfers) — yielding the sequential sum,
    the critical-path makespan and per-machine busy/idle tracks. The
    merge is a pure function of the logs: byte-identical for any host
    job count. *)

type kind =
  | Dma_in  (** host -> device transfer (scatter, input staging) *)
  | Compute  (** device-side work (kernel, MVM, search) *)
  | Dma_out  (** device -> host transfer (gather, result read-out) *)
  | Host  (** host-side orchestration between device ops *)

type ev = {
  chan : string;  (** engine within the machine; one channel serializes *)
  kind : kind;
  dur_s : float;
  bufs : int list;  (** machine-local buffer ids (RAW/WAR carriers) *)
  label : string;
}

type node = {
  n_id : int;
  n_deps : int list;  (** ids of earlier nodes this op waits on *)
  n_events : (string * ev) list;  (** (machine, event), in emission order *)
}

type track = {
  tr_machine : string;
  tr_compute_s : float;
  tr_dma_s : float;
  tr_idle_s : float;
}

type summary = {
  e2e_s : float;  (** overlapped (critical-path) end-to-end time *)
  seq_s : float;  (** sequential single-stream sum of the same events *)
  max_channel_busy_s : float;  (** busiest engine; lower bound on [e2e_s] *)
  tracks : track list;  (** per machine, in first-appearance order *)
}

val host_machine : string

(** The host-orchestration event of one node, on the shared "cpu" channel. *)
val host_event : float -> string * ev

(** One placed event of the overlapped replay. *)
type placed = {
  p_node : int;
  p_machine : string;
  p_chan : string;
  p_kind : kind;
  p_label : string;
  p_start_s : float;
  p_finish_s : float;
}

(** Makespan under one discipline (exposed for tests). [record] collects
    the placed events of the replay. *)
val makespan :
  ?record:placed Vec.t -> ?overlap:bool -> ?dma_depth:int -> node list -> float

(** The overlapped replay's placed events, in issue order. *)
val timeline : ?dma_depth:int -> node list -> placed list

val summarize : ?dma_depth:int -> node list -> summary
