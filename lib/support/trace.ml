(* Unified tracing & metrics (see trace.mli for the model).

   Concurrency: events may be pushed from any domain (the UPMEM
   simulator's kernel lanes run on a domain pool), so the buffer is
   guarded by a mutex and the on/off flags are atomics. In practice all
   device-clock events are emitted from the sequential host side of a
   simulation — the timing models run on the host in PU order — which is
   what makes the simulated-time track deterministic for any --jobs
   count.

   Determinism note for [device_total]: simulator stats buckets are
   built by sequential [+.] accumulation of per-event costs; every such
   increment emits exactly one span with that cost as its duration, and
   the fold below adds them back in emission order. Same floats, same
   order, same rounding — the trace-derived totals are bit-identical to
   the stats fields, which is what lets Report.breakdown be *derived*
   from the trace without perturbing fault-free --json output. *)

type clock = Host | Device

type arg = Str of string | Int of int | Float of float

type event = {
  ev_name : string;
  cat : string;
  ph : char;
  clock : clock;
  pid : int;
  track : string;
  ts : float;
  dur : float;
  args : (string * arg) list;
}

let host_pid = 1

let on = Atomic.make false
let enabled () = Atomic.get on

let mtx = Mutex.create ()

let locked f =
  Mutex.lock mtx;
  Fun.protect ~finally:(fun () -> Mutex.unlock mtx) f

let buf : event Vec.t = Vec.create ()
let device_names : (int * string) Vec.t = Vec.create ()
let next_pid = Atomic.make 2 (* pid 1 is the host *)

let epoch = Unix.gettimeofday ()
let now_host () = Unix.gettimeofday () -. epoch

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let clear () = locked (fun () -> Vec.clear buf)

let new_device name =
  let pid = Atomic.fetch_and_add next_pid 1 in
  locked (fun () -> Vec.push device_names (pid, name));
  pid

let push ev = if enabled () then locked (fun () -> Vec.push buf ev)

let complete ?(cat = "") ?(args = []) ~clock ~pid ~track ~ts ~dur name =
  push { ev_name = name; cat; ph = 'X'; clock; pid; track; ts; dur; args }

let instant ?(cat = "") ?(args = []) ~clock ~pid ~track ~ts name =
  push { ev_name = name; cat; ph = 'i'; clock; pid; track; ts; dur = 0.0; args }

let events () = locked (fun () -> Vec.to_list buf)

let device_events () =
  List.filter (fun e -> e.clock = Device) (events ())

let device_total ?pid cat =
  locked (fun () ->
      Vec.fold_left
        (fun acc e ->
          if
            e.clock = Device && e.ph = 'X' && e.cat = cat
            && (match pid with None -> true | Some p -> e.pid = p)
          then acc +. e.dur
          else acc)
        0.0 buf)

(* ----- Chrome trace-event JSON export ----- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_to_json = function
  | Str s -> "\"" ^ escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f

let args_to_json = function
  | [] -> ""
  | args ->
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_to_json v))
            args))

let to_json_string () =
  let evs, devices =
    locked (fun () -> (Vec.to_array buf, Vec.to_list device_names))
  in
  (* tids are assigned per pid in first-appearance order, which is
     deterministic because the event buffer itself is *)
  let tids : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let next_tid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let track_meta : (int * string * int) Vec.t = Vec.create () in
  let tid_of pid track =
    match Hashtbl.find_opt tids (pid, track) with
    | Some t -> t
    | None ->
      let n = Option.value (Hashtbl.find_opt next_tid pid) ~default:0 in
      Hashtbl.replace next_tid pid (n + 1);
      Hashtbl.replace tids (pid, track) n;
      Vec.push track_meta (pid, track, n);
      n
  in
  Array.iter (fun e -> ignore (tid_of e.pid e.track)) evs;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{ \"traceEvents\": [\n";
  let first = ref true in
  let line s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  let meta ~pid ~tid what name =
    line
      (Printf.sprintf
         "  {\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         what pid tid (escape name))
  in
  meta ~pid:host_pid ~tid:0 "process_name" "host (wall clock)";
  List.iter (fun (pid, name) -> meta ~pid ~tid:0 "process_name" name) devices;
  Vec.iter (fun (pid, track, tid) -> meta ~pid ~tid "thread_name" track) track_meta;
  Array.iter
    (fun e ->
      let tid = Hashtbl.find tids (e.pid, e.track) in
      let cat = if e.cat = "" then "cinm" else e.cat in
      let common =
        Printf.sprintf
          "  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f"
          (escape e.ev_name) (escape cat) e.ph e.pid tid (1e6 *. e.ts)
      in
      let tail =
        match e.ph with
        | 'X' -> Printf.sprintf ",\"dur\":%.6f%s}" (1e6 *. e.dur) (args_to_json e.args)
        | 'i' -> Printf.sprintf ",\"s\":\"t\"%s}" (args_to_json e.args)
        | _ -> args_to_json e.args ^ "}"
      in
      line (common ^ tail))
    evs;
  Buffer.add_string b "\n],\n";
  Buffer.add_string b "\"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string b
    "\"otherData\": { \"tool\": \"cinm\", \"host_clock\": \"wall microseconds since process start\", \"device_clock\": \"simulated microseconds\" }\n}\n";
  Buffer.contents b

let write path =
  let oc = open_out path in
  output_string oc (to_json_string ());
  close_out oc

(* ----- metrics registry ----- *)

module Metrics = struct
  let flag = Atomic.make false
  let enabled () = Atomic.get flag || Atomic.get on
  let enable () = Atomic.set flag true
  let disable () = Atomic.set flag false

  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

  type hist = {
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16

  let reset () =
    locked (fun () ->
        Hashtbl.reset counters;
        Hashtbl.reset hists)

  let incr ?(by = 1) name =
    if enabled () then
      locked (fun () ->
          match Hashtbl.find_opt counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.replace counters name (ref by))

  let observe name v =
    if enabled () then
      locked (fun () ->
          match Hashtbl.find_opt hists name with
          | Some h ->
            h.n <- h.n + 1;
            h.sum <- h.sum +. v;
            if v < h.mn then h.mn <- v;
            if v > h.mx then h.mx <- v
          | None -> Hashtbl.replace hists name { n = 1; sum = v; mn = v; mx = v })

  let get name =
    locked (fun () ->
        match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

  let dump () =
    locked (fun () ->
        let lines =
          Hashtbl.fold
            (fun k r acc -> Printf.sprintf "counter %s %d" k !r :: acc)
            counters []
          @ Hashtbl.fold
              (fun k h acc ->
                Printf.sprintf "histogram %s n=%d sum=%.6g min=%.6g max=%.6g" k
                  h.n h.sum h.mn h.mx
                :: acc)
              hists []
        in
        String.concat "" (List.map (fun l -> l ^ "\n") (List.sort compare lines)))
end

(* CINM_TRACE=FILE: enable at startup, export at exit. *)
let () =
  match Sys.getenv_opt "CINM_TRACE" with
  | None | Some "" -> ()
  | Some file ->
    enable ();
    at_exit (fun () -> write file)
