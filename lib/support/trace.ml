(* Unified tracing & metrics (see trace.mli for the model).

   Concurrency: events may be pushed from any domain (the UPMEM
   simulator's kernel lanes run on a domain pool), so the buffer is
   guarded by a mutex and the on/off flags are atomics. In practice all
   device-clock events are emitted from the sequential host side of a
   simulation — the timing models run on the host in PU order — which is
   what makes the simulated-time track deterministic for any --jobs
   count.

   Determinism note for [device_total]: simulator stats buckets are
   built by sequential [+.] accumulation of per-event costs; every such
   increment emits exactly one span with that cost as its duration, and
   the fold below adds them back in emission order. Same floats, same
   order, same rounding — the trace-derived totals are bit-identical to
   the stats fields, which is what lets Report.breakdown be *derived*
   from the trace without perturbing fault-free --json output.

   Per-request capture: a domain can open a capture ([with_capture]) that
   collects every event it emits into a private, domain-local buffer —
   independent of the global on/off flag — so a server can trace one
   request in isolation while its neighbours run untraced. The capture
   buffer lives in Domain.DLS, so two captures on different worker
   domains never see each other's spans; the only shared state is an
   atomic count of active captures, checked before the DLS read so the
   no-capture fast path stays one atomic load. *)

type clock = Host | Device

type arg = Str of string | Int of int | Float of float

type event = {
  ev_name : string;
  cat : string;
  ph : char;
  clock : clock;
  pid : int;
  track : string;
  ts : float;
  dur : float;
  args : (string * arg) list;
}

let host_pid = 1

let on = Atomic.make false

let mtx = Mutex.create ()

let locked f =
  Mutex.lock mtx;
  Fun.protect ~finally:(fun () -> Mutex.unlock mtx) f

let buf : event Vec.t = Vec.create ()
let device_names : (int * string) Vec.t = Vec.create ()
let next_pid = Atomic.make 2 (* pid 1 is the host *)

let epoch = Unix.gettimeofday ()
let now_host () = Unix.gettimeofday () -. epoch

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let clear () = locked (fun () -> Vec.clear buf)

(* ----- per-request capture ----- *)

type capture = {
  cap_events : event list;
  cap_devices : (int * string) list;  (** pids registered during the capture *)
}

type capture_buf = { cbuf : event Vec.t; cdevices : (int * string) Vec.t }

let active_captures = Atomic.make 0

let capture_key : capture_buf option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Fast path: one atomic load when no capture is open anywhere. *)
let current_capture () =
  if Atomic.get active_captures = 0 then None else Domain.DLS.get capture_key

let capturing () = current_capture () <> None

let enabled () = Atomic.get on || capturing ()

let new_device name =
  let pid = Atomic.fetch_and_add next_pid 1 in
  (match current_capture () with
  | Some c ->
    Vec.push c.cdevices (pid, name);
    if Atomic.get on then locked (fun () -> Vec.push device_names (pid, name))
  | None -> locked (fun () -> Vec.push device_names (pid, name)));
  pid

let push ev =
  (match current_capture () with
  | Some c -> Vec.push c.cbuf ev
  | None -> ());
  if Atomic.get on then locked (fun () -> Vec.push buf ev)

let complete ?(cat = "") ?(args = []) ~clock ~pid ~track ~ts ~dur name =
  if enabled () then
    push { ev_name = name; cat; ph = 'X'; clock; pid; track; ts; dur; args }

let instant ?(cat = "") ?(args = []) ~clock ~pid ~track ~ts name =
  if enabled () then
    push { ev_name = name; cat; ph = 'i'; clock; pid; track; ts; dur = 0.0; args }

let with_capture f =
  let c = { cbuf = Vec.create (); cdevices = Vec.create () } in
  let prev = Domain.DLS.get capture_key in
  Domain.DLS.set capture_key (Some c);
  Atomic.incr active_captures;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active_captures;
      Domain.DLS.set capture_key prev)
    (fun () ->
      let r = f () in
      (r, { cap_events = Vec.to_list c.cbuf; cap_devices = Vec.to_list c.cdevices }))

let events () = locked (fun () -> Vec.to_list buf)

let device_events () =
  List.filter (fun e -> e.clock = Device) (events ())

let fold_device_total ~pid ~cat acc e =
  if
    e.clock = Device && e.ph = 'X' && e.cat = cat
    && (match pid with None -> true | Some p -> e.pid = p)
  then acc +. e.dur
  else acc

(* When the global buffer is live it is authoritative (a concurrent
   capture duplicates events into both, so folding both would double
   count); a capture-only domain folds its private buffer, which holds
   the same spans in the same emission order, hence the same floats. *)
let device_total ?pid cat =
  if Atomic.get on then
    locked (fun () -> Vec.fold_left (fold_device_total ~pid ~cat) 0.0 buf)
  else
    match current_capture () with
    | Some c -> Vec.fold_left (fold_device_total ~pid ~cat) 0.0 c.cbuf
    | None -> locked (fun () -> Vec.fold_left (fold_device_total ~pid ~cat) 0.0 buf)

(* ----- Chrome trace-event JSON export ----- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_to_json = function
  | Str s -> "\"" ^ escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f

let args_to_json = function
  | [] -> ""
  | args ->
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_to_json v))
            args))

let json_of_events ~devices (evs : event array) =
  (* tids are assigned per pid in first-appearance order, which is
     deterministic because the event buffer itself is *)
  let tids : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let next_tid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let track_meta : (int * string * int) Vec.t = Vec.create () in
  let tid_of pid track =
    match Hashtbl.find_opt tids (pid, track) with
    | Some t -> t
    | None ->
      let n = Option.value (Hashtbl.find_opt next_tid pid) ~default:0 in
      Hashtbl.replace next_tid pid (n + 1);
      Hashtbl.replace tids (pid, track) n;
      Vec.push track_meta (pid, track, n);
      n
  in
  Array.iter (fun e -> ignore (tid_of e.pid e.track)) evs;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{ \"traceEvents\": [\n";
  let first = ref true in
  let line s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  let meta ~pid ~tid what name =
    line
      (Printf.sprintf
         "  {\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         what pid tid (escape name))
  in
  meta ~pid:host_pid ~tid:0 "process_name" "host (wall clock)";
  List.iter (fun (pid, name) -> meta ~pid ~tid:0 "process_name" name) devices;
  Vec.iter (fun (pid, track, tid) -> meta ~pid ~tid "thread_name" track) track_meta;
  Array.iter
    (fun e ->
      let tid = Hashtbl.find tids (e.pid, e.track) in
      let cat = if e.cat = "" then "cinm" else e.cat in
      let common =
        Printf.sprintf
          "  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f"
          (escape e.ev_name) (escape cat) e.ph e.pid tid (1e6 *. e.ts)
      in
      let tail =
        match e.ph with
        | 'X' -> Printf.sprintf ",\"dur\":%.6f%s}" (1e6 *. e.dur) (args_to_json e.args)
        | 'i' -> Printf.sprintf ",\"s\":\"t\"%s}" (args_to_json e.args)
        | _ -> args_to_json e.args ^ "}"
      in
      line (common ^ tail))
    evs;
  Buffer.add_string b "\n],\n";
  Buffer.add_string b "\"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string b
    "\"otherData\": { \"tool\": \"cinm\", \"host_clock\": \"wall microseconds since process start\", \"device_clock\": \"simulated microseconds\" }\n}\n";
  Buffer.contents b

let to_json_string () =
  let evs, devices =
    locked (fun () -> (Vec.to_array buf, Vec.to_list device_names))
  in
  json_of_events ~devices evs

let capture_to_json c =
  json_of_events ~devices:c.cap_devices (Array.of_list c.cap_events)

let write path =
  let oc = open_out path in
  output_string oc (to_json_string ());
  close_out oc

(* ----- metrics registry ----- *)

module Metrics = struct
  let flag = Atomic.make false
  let enabled () = Atomic.get flag || Atomic.get on
  let enable () = Atomic.set flag true
  let disable () = Atomic.set flag false

  (* ---- histogram bucket geometry ----
     Log-bucketed, HDR-style: [sub] buckets per power of two over
     [lo, lo * 2^octaves), plus a final overflow bucket. Bucket [i]
     covers (upper (i-1), upper i] with upper i = lo * 2^((i+1)/sub),
     so the relative quantile error is bounded by 2^(1/sub) - 1 (~4.4%
     at sub = 16). With lo = 1e-9 the range spans nanoseconds to ~36
     years — per-pass wall milliseconds and end-to-end request seconds
     share one geometry. *)
  let sub = 16
  let lo = 1e-9
  let octaves = 60
  let n_buckets = (sub * octaves) + 1

  let bucket_upper i =
    if i >= n_buckets - 1 then infinity
    else lo *. Float.pow 2.0 (float_of_int (i + 1) /. float_of_int sub)

  let bucket_of_value v =
    if not (v > lo) then 0
    else if not (v <= bucket_upper (n_buckets - 2)) then
      (* past the last finite bound (or infinite/NaN-ish): the overflow
         bucket; [v /. lo] below could overflow and wreck the fixup *)
      n_buckets - 1
    else begin
      let m, e = Float.frexp (v /. lo) in
      (* log2 (v/lo) = e + log2 m with m in [0.5, 1) *)
      let l2 = float_of_int e +. (Float.log m /. Float.log 2.0) in
      let i = int_of_float (l2 *. float_of_int sub) in
      let i = max 0 (min (n_buckets - 1) i) in
      (* the float log is a hair off at bucket edges; nudge so the
         (upper (i-1), upper i] contract holds exactly *)
      if i > 0 && v <= bucket_upper (i - 1) then i - 1
      else if i < n_buckets - 1 && v > bucket_upper i then i + 1
      else i
    end

  (* ---- registry ----
     Names are interned once (under the trace mutex) into dense ids;
     every observation then touches only the calling domain's shard —
     plain loads and stores on domain-private arrays, no lock, no CAS.
     Readers take the mutex (which freezes shard *registration*, not
     writers) and sum across shards; a racing writer can at worst make
     a snapshot a few observations stale, never torn, because each
     bucket slot is a single word updated by exactly one domain. *)

  type meta = { id : int; mutable help : string }

  let cmetas : (string, meta) Hashtbl.t = Hashtbl.create 64
  let hmetas : (string, meta) Hashtbl.t = Hashtbl.create 32
  let next_cid = ref 0
  let next_hid = ref 0

  type hshard = {
    hcounts : int array;
    mutable hsum : float;
    mutable hmn : float;
    mutable hmx : float;
  }

  type shard = {
    mutable sctrs : int array;  (** indexed by counter id *)
    mutable shists : hshard option array;  (** indexed by histogram id *)
  }

  let shards : shard Vec.t = Vec.create ()

  let shard_key : shard Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let s = { sctrs = [||]; shists = [||] } in
        locked (fun () -> Vec.push shards s);
        s)

  (* Must never be called with [mtx] held: first use on a domain
     registers the shard under the mutex. *)
  let my_shard () = Domain.DLS.get shard_key

  type counter = int
  type histogram = int

  let intern table next ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt table name with
        | Some m ->
          if help <> "" && m.help = "" then m.help <- help;
          m.id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.replace table name { id; help };
          id)

  let counter ?help name = intern cmetas next_cid ?help name
  let histogram ?help name = intern hmetas next_hid ?help name

  let grow_ctrs s id =
    let a = Array.make (max 8 ((id + 1) * 2)) 0 in
    Array.blit s.sctrs 0 a 0 (Array.length s.sctrs);
    s.sctrs <- a

  let add c by =
    if enabled () then begin
      let s = my_shard () in
      if Array.length s.sctrs <= c then grow_ctrs s c;
      s.sctrs.(c) <- s.sctrs.(c) + by
    end

  let hist_shard s h =
    if Array.length s.shists <= h then begin
      let a = Array.make (max 8 ((h + 1) * 2)) None in
      Array.blit s.shists 0 a 0 (Array.length s.shists);
      s.shists <- a
    end;
    match s.shists.(h) with
    | Some hs -> hs
    | None ->
      let hs =
        {
          hcounts = Array.make n_buckets 0;
          hsum = 0.0;
          hmn = infinity;
          hmx = neg_infinity;
        }
      in
      s.shists.(h) <- Some hs;
      hs

  let record h v =
    if enabled () then begin
      let s = my_shard () in
      let hs = hist_shard s h in
      let b = bucket_of_value v in
      hs.hcounts.(b) <- hs.hcounts.(b) + 1;
      hs.hsum <- hs.hsum +. v;
      if v < hs.hmn then hs.hmn <- v;
      if v > hs.hmx then hs.hmx <- v
    end

  let incr ?(by = 1) name = if enabled () then add (counter name) by
  let observe name v = if enabled () then record (histogram name) v

  (* ---- gauges ----
     Settable gauges are plain cells; callback gauges sample live state
     (pool depth, cache occupancy) at snapshot time. Callbacks run
     *outside* the registry mutex — they may take their owner's lock
     (pool, cache), and holding ours across that would order locks both
     ways round. [register_gauge] replaces by name so a restarted server
     in one process re-points the gauge at its live instance. *)
  let gauge_fns : (string, string * (unit -> float)) Hashtbl.t = Hashtbl.create 16
  let gauge_vals : (string, string * float ref) Hashtbl.t = Hashtbl.create 16

  let register_gauge ?(help = "") name fn =
    locked (fun () -> Hashtbl.replace gauge_fns name (help, fn))

  let unregister_gauge name = locked (fun () -> Hashtbl.remove gauge_fns name)

  let set_gauge ?(help = "") name v =
    if enabled () then
      locked (fun () ->
          match Hashtbl.find_opt gauge_vals name with
          | Some (_, r) -> r := v
          | None -> Hashtbl.replace gauge_vals name (help, ref v))

  let reset () =
    locked (fun () ->
        Hashtbl.reset cmetas;
        Hashtbl.reset hmetas;
        Hashtbl.reset gauge_fns;
        Hashtbl.reset gauge_vals;
        Vec.iter
          (fun s ->
            Array.fill s.sctrs 0 (Array.length s.sctrs) 0;
            Array.iteri
              (fun i hs ->
                ignore hs;
                s.shists.(i) <- None)
              s.shists)
          shards)

  (* ---- snapshots ---- *)

  type hist_snapshot = {
    hname : string;
    hhelp : string;
    count : int;
    sum : float;
    minv : float;
    maxv : float;
    buckets : (int * int) array;  (** (bucket index, count), non-empty only *)
  }

  let sum_counter_locked m =
    Vec.fold_left
      (fun acc s -> acc + (if Array.length s.sctrs > m.id then s.sctrs.(m.id) else 0))
      0 shards

  let get name =
    locked (fun () ->
        match Hashtbl.find_opt cmetas name with
        | None -> 0
        | Some m -> sum_counter_locked m)

  let counters () =
    locked (fun () ->
        Hashtbl.fold (fun n m acc -> (n, m.help, sum_counter_locked m) :: acc) cmetas [])
    |> List.sort compare

  let merge_hist_locked name help m =
    let counts = Array.make n_buckets 0 in
    let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
    Vec.iter
      (fun s ->
        if Array.length s.shists > m.id then
          match s.shists.(m.id) with
          | None -> ()
          | Some hs ->
            Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) hs.hcounts;
            sum := !sum +. hs.hsum;
            if hs.hmn < !mn then mn := hs.hmn;
            if hs.hmx > !mx then mx := hs.hmx)
      shards;
    let nonempty = ref [] in
    let total = ref 0 in
    for i = n_buckets - 1 downto 0 do
      if counts.(i) > 0 then begin
        nonempty := (i, counts.(i)) :: !nonempty;
        total := !total + counts.(i)
      end
    done;
    {
      hname = name;
      hhelp = help;
      count = !total;
      sum = !sum;
      minv = !mn;
      maxv = !mx;
      buckets = Array.of_list !nonempty;
    }

  let histograms () =
    locked (fun () ->
        Hashtbl.fold (fun n m acc -> merge_hist_locked n m.help m :: acc) hmetas [])
    |> List.sort (fun a b -> compare a.hname b.hname)

  let histogram_snapshot name =
    locked (fun () ->
        Option.map
          (fun m -> merge_hist_locked name m.help m)
          (Hashtbl.find_opt hmetas name))

  let gauges () =
    let fns, vals =
      locked (fun () ->
          ( Hashtbl.fold (fun n (h, f) acc -> (n, h, f) :: acc) gauge_fns [],
            Hashtbl.fold (fun n (h, r) acc -> (n, h, !r) :: acc) gauge_vals [] ))
    in
    (* callbacks sampled outside the lock; a dead callback reads as NaN *)
    List.map (fun (n, h, f) -> (n, h, try f () with _ -> nan)) fns @ vals
    |> List.sort compare

  (* Bucket-resolution quantile: the upper bound of the bucket holding
     the rank-th observation, clamped into [minv, maxv] so q=1 returns
     the exact max and a single-observation histogram returns the exact
     value. Error is bounded by one bucket width (~4.4%). *)
  let quantile snap q =
    if snap.count = 0 then 0.0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int snap.count)) in
      let rank = max 1 (min snap.count rank) in
      let n = Array.length snap.buckets in
      let rec go i cum =
        if i >= n then snap.maxv
        else begin
          let b, c = snap.buckets.(i) in
          let cum = cum + c in
          if cum >= rank then Float.min snap.maxv (Float.max snap.minv (bucket_upper b))
          else go (i + 1) cum
        end
      in
      go 0 0
    end

  let dump () =
    let lines =
      List.map (fun (n, _, v) -> Printf.sprintf "counter %s %d" n v) (counters ())
      @ List.filter_map
          (fun s ->
            if s.count = 0 then None
            else
              Some
                (Printf.sprintf "histogram %s n=%d sum=%.6g min=%.6g max=%.6g"
                   s.hname s.count s.sum s.minv s.maxv))
          (histograms ())
    in
    String.concat "" (List.map (fun l -> l ^ "\n") (List.sort compare lines))

  (* ---- Prometheus text exposition ---- *)

  let prom_escape_help s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let prom_escape_label s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Registry names are free-form ("pass.cinm-to-cnm.wall_ms"); the
     exposition must emit [a-zA-Z0-9_:] names, so anything else becomes
     '_' (families that collide after sanitization merge — acceptable
     for dotted debug metrics, and the serve metrics are already
     clean). *)
  let prom_name s =
    let sane =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        s
    in
    if sane <> "" && sane.[0] >= '0' && sane.[0] <= '9' then "_" ^ sane
    else sane

  (* "family{a="b"}" -> family, {a="b"}; labels must already be escaped
     by whoever minted the metric name. *)
  let split_labels name =
    match String.index_opt name '{' with
    | None -> (name, "")
    | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

  let with_extra_label labels key value =
    let kv = Printf.sprintf "%s=\"%s\"" key value in
    if labels = "" then "{" ^ kv ^ "}"
    else String.sub labels 0 (String.length labels - 1) ^ "," ^ kv ^ "}"

  let prom_float f =
    if Float.is_nan f then "NaN"
    else if f = infinity then "+Inf"
    else if f = neg_infinity then "-Inf"
    else Printf.sprintf "%.17g" f

  let le_string ub = if ub = infinity then "+Inf" else Printf.sprintf "%.9g" ub

  let to_prometheus () =
    (* one entry per family: (family, type, help, series lines) — series
       within a family keep snapshot (name-sorted) order, families are
       then sorted, so output is stable run to run *)
    let fams : (string, string * string ref * string list ref) Hashtbl.t =
      Hashtbl.create 32
    in
    let order : string Vec.t = Vec.create () in
    let family_slot fam ty help =
      match Hashtbl.find_opt fams fam with
      | Some (_, h, lines) ->
        if help <> "" && !h = "" then h := help;
        lines
      | None ->
        let lines = ref [] in
        Hashtbl.replace fams fam (ty, ref help, lines);
        Vec.push order fam;
        lines
    in
    List.iter
      (fun (name, help, v) ->
        let fam, labels = split_labels name in
        let fam = prom_name fam in
        let lines = family_slot fam "counter" help in
        lines := Printf.sprintf "%s%s %d" fam labels v :: !lines)
      (counters ());
    List.iter
      (fun (name, help, v) ->
        let fam, labels = split_labels name in
        let fam = prom_name fam in
        let lines = family_slot fam "gauge" help in
        lines := Printf.sprintf "%s%s %s" fam labels (prom_float v) :: !lines)
      (gauges ());
    List.iter
      (fun s ->
        let fam, labels = split_labels s.hname in
        let fam = prom_name fam in
        let lines = family_slot fam "histogram" s.hhelp in
        let cum = ref 0 in
        Array.iter
          (fun (b, c) ->
            cum := !cum + c;
            lines :=
              Printf.sprintf "%s_bucket%s %d" fam
                (with_extra_label labels "le" (le_string (bucket_upper b)))
                !cum
              :: !lines)
          s.buckets;
        lines :=
          Printf.sprintf "%s_bucket%s %d" fam
            (with_extra_label labels "le" "+Inf")
            s.count
          :: !lines;
        lines := Printf.sprintf "%s_sum%s %s" fam labels (prom_float s.sum) :: !lines;
        lines := Printf.sprintf "%s_count%s %d" fam labels s.count :: !lines)
      (histograms ());
    let b = Buffer.create 4096 in
    let fam_names = List.sort compare (Vec.to_list order) in
    List.iter
      (fun fam ->
        let ty, help, lines = Hashtbl.find fams fam in
        if !help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" fam (prom_escape_help !help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" fam ty);
        List.iter (fun l -> Buffer.add_string b (l ^ "\n")) (List.rev !lines))
      fam_names;
    Buffer.contents b
end

(* CINM_TRACE=FILE: enable at startup, export at exit. *)
let () =
  match Sys.getenv_opt "CINM_TRACE" with
  | None | Some "" -> ()
  | Some file ->
    enable ();
    at_exit (fun () -> write file)
