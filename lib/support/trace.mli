(** Unified tracing & metrics for the CINM stack.

    A domain-safe structured tracer with named spans, instants and
    counters on {e two clocks}:

    - {b Host}: monotonic-ish wall-clock seconds since process start —
      where compile-time goes (pass pipeline, driver, bench harness);
    - {b Device}: simulated seconds on a device simulator's own event
      clock — where modelled time goes (DPU lanes, crossbar tiles).

    Each simulated machine registers itself as its own trace process
    ({!new_device}), so several machines in one run do not overlap.
    The whole buffer exports as Chrome trace-event JSON, loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    Tracing is off by default and every emission is guarded: call sites
    must test {!enabled} before building args, so a disabled tracer costs
    one atomic load and no allocation. [CINM_TRACE=FILE] in the
    environment enables tracing at startup and writes [FILE] at exit;
    [bench --trace FILE] and [cinm_opt --trace FILE] do the same
    explicitly. *)

type clock = Host | Device

type arg = Str of string | Int of int | Float of float

type event = {
  ev_name : string;
  cat : string;  (** category: "pass", "kernel", "xfer-in", "mvm", ... *)
  ph : char;  (** 'X' complete span, 'i' instant *)
  clock : clock;
  pid : int;  (** {!host_pid} or a {!new_device} pid *)
  track : string;  (** timeline within the process, e.g. "dpu3", "tile0" *)
  ts : float;  (** seconds on the event's clock *)
  dur : float;  (** span length in seconds; 0 for instants *)
  args : (string * arg) list;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop all collected events (device registrations survive). *)
val clear : unit -> unit

(** Host clock: wall seconds since process start. *)
val now_host : unit -> float

(** The trace process id of host wall-clock tracks. *)
val host_pid : int

(** Register a simulated device as its own trace process; the returned
    pid scopes its device-clock tracks (and {!device_total} queries). *)
val new_device : string -> int

(** Emit a complete span ([ph = 'X']). No-op when tracing is disabled,
    but callers should still guard with {!enabled} to avoid building
    [args]. *)
val complete :
  ?cat:string ->
  ?args:(string * arg) list ->
  clock:clock ->
  pid:int ->
  track:string ->
  ts:float ->
  dur:float ->
  string ->
  unit

(** Emit an instant event ([ph = 'i']). *)
val instant :
  ?cat:string ->
  ?args:(string * arg) list ->
  clock:clock ->
  pid:int ->
  track:string ->
  ts:float ->
  string ->
  unit

(** Snapshot of all events in emission order. *)
val events : unit -> event list

(** Only the simulated-time events, in emission order. Device events are
    emitted exclusively from the host thread of a simulation, so this
    list is bit-identical for any domain-pool size. *)
val device_events : unit -> event list

(** Sum of the durations of device-clock spans in a category (optionally
    restricted to one device pid), folded in emission order — the same
    additions, in the same order, as the simulator stats buckets, so the
    result is bit-identical to them. [Report.breakdown] derives from
    this when tracing is live. *)
val device_total : ?pid:int -> string -> float

(** Chrome trace-event JSON (the object form, with process/thread
    metadata) — loadable in Perfetto. Host timestamps are wall
    microseconds, device timestamps simulated microseconds. *)
val to_json_string : unit -> string

val write : string -> unit

(** In-process metrics registry: monotonic counters and simple
    histograms, with a stable text dump for tests and
    [cinm_opt --pass-stats]. Collection is on whenever tracing is, or
    independently via {!Metrics.enable}. *)
module Metrics : sig
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit
  val reset : unit -> unit

  (** Add to a monotonic counter (created at zero on first use).
      No-op when collection is off. *)
  val incr : ?by:int -> string -> unit

  (** Record one observation into a histogram. No-op when off. *)
  val observe : string -> float -> unit

  (** Current counter value, 0 when absent. *)
  val get : string -> int

  (** Stable dump: one line per metric, sorted by name —
      [counter <name> <value>] and
      [histogram <name> n=<n> sum=<s> min=<m> max=<M>]. *)
  val dump : unit -> string
end
