(** Unified tracing & metrics for the CINM stack.

    A domain-safe structured tracer with named spans, instants and
    counters on {e two clocks}:

    - {b Host}: monotonic-ish wall-clock seconds since process start —
      where compile-time goes (pass pipeline, driver, bench harness);
    - {b Device}: simulated seconds on a device simulator's own event
      clock — where modelled time goes (DPU lanes, crossbar tiles).

    Each simulated machine registers itself as its own trace process
    ({!new_device}), so several machines in one run do not overlap.
    The whole buffer exports as Chrome trace-event JSON, loadable in
    Perfetto ([ui.perfetto.dev]) or [chrome://tracing].

    Tracing is off by default and every emission is guarded: call sites
    must test {!enabled} before building args, so a disabled tracer costs
    one atomic load and no allocation. [CINM_TRACE=FILE] in the
    environment enables tracing at startup and writes [FILE] at exit;
    [bench --trace FILE] and [cinm_opt --trace FILE] do the same
    explicitly.

    {!with_capture} opens a {e per-domain} capture: every event the
    calling domain emits inside the callback is also collected into a
    private buffer, independent of the global flag — this is how the
    serve daemon traces a single request in isolation. *)

type clock = Host | Device

type arg = Str of string | Int of int | Float of float

type event = {
  ev_name : string;
  cat : string;  (** category: "pass", "kernel", "xfer-in", "mvm", ... *)
  ph : char;  (** 'X' complete span, 'i' instant *)
  clock : clock;
  pid : int;  (** {!host_pid} or a {!new_device} pid *)
  track : string;  (** timeline within the process, e.g. "dpu3", "tile0" *)
  ts : float;  (** seconds on the event's clock *)
  dur : float;  (** span length in seconds; 0 for instants *)
  args : (string * arg) list;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop all collected events (device registrations survive). *)
val clear : unit -> unit

(** Host clock: wall seconds since process start. *)
val now_host : unit -> float

(** The trace process id of host wall-clock tracks. *)
val host_pid : int

(** Register a simulated device as its own trace process; the returned
    pid scopes its device-clock tracks (and {!device_total} queries). *)
val new_device : string -> int

(** Emit a complete span ([ph = 'X']). No-op when tracing is disabled,
    but callers should still guard with {!enabled} to avoid building
    [args]. *)
val complete :
  ?cat:string ->
  ?args:(string * arg) list ->
  clock:clock ->
  pid:int ->
  track:string ->
  ts:float ->
  dur:float ->
  string ->
  unit

(** Emit an instant event ([ph = 'i']). *)
val instant :
  ?cat:string ->
  ?args:(string * arg) list ->
  clock:clock ->
  pid:int ->
  track:string ->
  ts:float ->
  string ->
  unit

(** Snapshot of all events in emission order. *)
val events : unit -> event list

(** Only the simulated-time events, in emission order. Device events are
    emitted exclusively from the host thread of a simulation, so this
    list is bit-identical for any domain-pool size. *)
val device_events : unit -> event list

(** Sum of the durations of device-clock spans in a category (optionally
    restricted to one device pid), folded in emission order — the same
    additions, in the same order, as the simulator stats buckets, so the
    result is bit-identical to them. [Report.breakdown] derives from
    this when tracing is live. Inside a capture (with global tracing
    off) the fold runs over the capture's private buffer, which holds
    the same spans in the same order. *)
val device_total : ?pid:int -> string -> float

(** {2 Per-request capture} *)

(** Events and device registrations collected by one {!with_capture}. *)
type capture = { cap_events : event list; cap_devices : (int * string) list }

(** Run the callback with a domain-local capture open: every event this
    domain emits lands in the returned capture, whether or not global
    tracing is on (events are duplicated into the global buffer when it
    is). Captures on different domains are fully isolated; nested
    captures shadow the outer one for their extent. The capture is
    closed even if the callback raises. *)
val with_capture : (unit -> 'a) -> 'a * capture

(** Render a capture as a standalone Chrome trace-event JSON document. *)
val capture_to_json : capture -> string

(** Chrome trace-event JSON (the object form, with process/thread
    metadata) — loadable in Perfetto. Host timestamps are wall
    microseconds, device timestamps simulated microseconds. *)
val to_json_string : unit -> string

val write : string -> unit

(** In-process metrics registry: monotonic counters, gauges and
    log-bucketed histograms with per-domain shards. Names are interned
    once into dense ids; every observation then writes only the calling
    domain's shard — no mutex, no CAS on the hot path. Readers merge
    the shards exactly (bucket counts are summed) under the registry
    lock. Collection is on whenever tracing is, or independently via
    {!Metrics.enable}. *)
module Metrics : sig
  val enabled : unit -> bool
  val enable : unit -> unit
  val disable : unit -> unit

  (** Clear every metric (names, help text, gauges, shard contents).
      Typed handles created before a reset keep writing into zeroed
      slots but drop out of snapshots until re-created — intended for
      tests and CLI teardown, not for live servers. *)
  val reset : unit -> unit

  (** {2 Dynamic (name-keyed) interface}

      Convenient for printf-style names ([pass.<name>.wall_ms]); each
      call interns the name under the registry lock. Hot paths that own
      their names should intern a typed handle once instead. *)

  (** Add to a monotonic counter (created at zero on first use).
      No-op when collection is off. *)
  val incr : ?by:int -> string -> unit

  (** Record one observation into a histogram. No-op when off. *)
  val observe : string -> float -> unit

  (** Current counter value, 0 when absent. *)
  val get : string -> int

  (** Set a gauge to an absolute value. No-op when collection is off. *)
  val set_gauge : ?help:string -> string -> float -> unit

  (** Register a callback gauge sampled at snapshot time (outside the
      registry lock, so it may take its owner's lock). Replaces any
      previous registration under the same name. *)
  val register_gauge : ?help:string -> string -> (unit -> float) -> unit

  val unregister_gauge : string -> unit

  (** {2 Typed handles}

      Interned once; {!add}/{!record} are lock-free single-domain
      writes. A metric name may carry Prometheus-style labels inline,
      e.g. [requests_total{code="ok"}] — the exposition groups series
      by the family before ['{']. *)

  type counter
  type histogram

  val counter : ?help:string -> string -> counter
  val histogram : ?help:string -> string -> histogram
  val add : counter -> int -> unit
  val record : histogram -> float -> unit

  (** {2 Histogram bucket geometry} (exposed for tests and clients)

      Bucket [i] covers [(bucket_upper (i-1), bucket_upper i]]; the
      last bucket's upper bound is [infinity]. 16 sub-buckets per power
      of two bound the relative quantile error by [2^(1/16) - 1]
      (~4.4%). *)

  val n_buckets : int
  val bucket_of_value : float -> int
  val bucket_upper : int -> float

  (** Escape a string for use as a Prometheus label value (['\\'], ['"']
      and newlines), e.g. when minting [family{code="<v>"}] names. *)
  val prom_escape_label : string -> string

  (** {2 Snapshots}

      Merged across shards at call time. [counters]/[gauges] return
      [(name, help, value)] sorted by name. *)

  type hist_snapshot = {
    hname : string;
    hhelp : string;
    count : int;
    sum : float;
    minv : float;  (** exact observed minimum ([infinity] when empty) *)
    maxv : float;  (** exact observed maximum *)
    buckets : (int * int) array;
        (** (bucket index, count) pairs, ascending, non-empty buckets only *)
  }

  val counters : unit -> (string * string * int) list
  val gauges : unit -> (string * string * float) list
  val histograms : unit -> hist_snapshot list
  val histogram_snapshot : string -> hist_snapshot option

  (** Bucket-resolution quantile (q in [0,1]): the upper bound of the
      bucket holding the rank-ceil(q*n) observation, clamped into
      [[minv, maxv]] so [quantile s 1.0 = maxv] exactly. 0 when empty. *)
  val quantile : hist_snapshot -> float -> float

  (** Stable dump: one line per metric, sorted by name —
      [counter <name> <value>] and
      [histogram <name> n=<n> sum=<s> min=<m> max=<M>] (empty
      histograms are omitted). *)
  val dump : unit -> string

  (** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE] per
      family, histogram [_bucket]/[_sum]/[_count] series with cumulative
      counts over non-empty buckets plus [+Inf], families sorted by
      name. *)
  val to_prometheus : unit -> string
end
