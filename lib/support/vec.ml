(* Growable array, used pervasively by the IR and the simulators.
   OCaml 5.1's stdlib has no [Dynarray]; this is a minimal substitute. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let new_cap = max n (max 8 (2 * cap)) in
    (* Safe: we only read initialized slots below [len]. *)
    let fresh = Array.make new_cap v.data.(0) in
    Array.blit v.data 0 fresh 0 v.len;
    v.data <- fresh
  end

let push v x =
  if Array.length v.data = 0 then begin
    v.data <- Array.make 8 x;
    v.len <- 1
  end
  else begin
    ensure_capacity v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1
  end

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  v.data.(v.len)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.init v.len (fun i -> v.data.(i))

let of_list l =
  match l with
  | [] -> create ()
  | x :: _ ->
    let v = { data = Array.make (max 8 (List.length l)) x; len = 0 } in
    List.iter (fun y -> push v y) l;
    v

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let map f v = of_list (List.map f (to_list v))

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let map_in_place f v =
  for i = 0 to v.len - 1 do
    v.data.(i) <- f v.data.(i)
  done

(* Keep only elements satisfying [p], preserving order. O(n). *)
let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  v.len <- !j
