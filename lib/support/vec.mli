(** Growable array (OCaml 5.1 has no stdlib [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** @raise Invalid_argument when the index is out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t

(** Last element, or [None] when empty. *)
val last : 'a t -> 'a option

val map_in_place : ('a -> 'a) -> 'a t -> unit

(** Keep only the elements satisfying the predicate, preserving order. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit
