(* Canonicalization: constant folding of scalar arith ops and common
   subexpression elimination of pure, region-free ops. Run after lowering
   passes to clean up the index arithmetic and duplicate constants the
   kernel generators emit.

   CSE is per-block (ops in nested regions only see their own block's
   memo), so isolated-from-above regions (cnm.launch bodies) can never
   capture a value hoisted across their boundary. *)

open Cinm_ir

let foldable =
  [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.divsi"; "arith.remsi";
    "arith.minsi"; "arith.maxsi"; "arith.andi"; "arith.ori"; "arith.xori" ]

(* integer semantics of the fold (independent of the interpreter lib) *)
let fold_scalar name a b =
  match name with
  | "arith.addi" -> a + b
  | "arith.subi" -> a - b
  | "arith.muli" -> a * b
  | "arith.divsi" -> if b = 0 then 0 else a / b
  | "arith.remsi" -> if b = 0 then 0 else a mod b
  | "arith.minsi" -> min a b
  | "arith.maxsi" -> max a b
  | "arith.andi" -> a land b
  | "arith.ori" -> a lor b
  | "arith.xori" -> a lxor b
  | other -> invalid_arg ("canonicalize: fold " ^ other)

(* Fold results must wrap to the result width, or non-congruent ops
   (min/max/div) downstream would see different values than the wrapped
   runtime semantics. *)
let wrap_to_result (op : Ir.op) x =
  match (Ir.result op 0).Ir.ty with
  | Types.Scalar dt when not (Types.is_float_dtype dt) && dt <> Types.I64 ->
    let bits = Types.dtype_bits dt in
    let m = x land ((1 lsl bits) - 1) in
    if m >= 1 lsl (bits - 1) then m - (1 lsl bits) else m
  | _ -> x

let fold_op (op : Ir.op) : int option =
  if not (List.mem op.Ir.name foldable) then None
  else
    match
      ( Transform_util.constant_of (Ir.operand op 0),
        Transform_util.constant_of (Ir.operand op 1) )
    with
    | Some a, Some b ->
      Some
        (wrap_to_result op
           (fold_scalar op.Ir.name (wrap_to_result op a) (wrap_to_result op b)))
    | _ -> None

let cse_key (op : Ir.op) =
  let operands =
    Array.to_list op.Ir.operands
    |> List.map (fun (v : Ir.value) -> string_of_int v.Ir.vid)
    |> String.concat ","
  in
  let attrs =
    List.sort compare op.Ir.attrs
    |> List.map (fun (k, a) -> k ^ "=" ^ Attr.to_string a)
    |> String.concat ";"
  in
  let result_tys =
    Array.to_list op.Ir.results
    |> List.map (fun (v : Ir.value) -> Types.to_string v.Ir.ty)
    |> String.concat ","
  in
  Printf.sprintf "%s(%s){%s}:%s" op.Ir.name operands attrs result_tys

let cse_eligible (op : Ir.op) =
  Array.length op.Ir.regions = 0
  && Array.length op.Ir.results > 0
  &&
  match Ir.dialect_of op with
  | "arith" -> true
  | "tensor" -> op.Ir.name <> "tensor.empty" (* distinct buffers on purpose *)
  | _ -> false

let run_on_func (f : Func.t) =
  let rec canon_block (block : Ir.block) =
    let memo : (string, Ir.op) Hashtbl.t = Hashtbl.create 32 in
    let kept = ref [] in
    Ir.iter_ops
      (fun (op : Ir.op) ->
        Array.iter (fun r -> Ir.iter_blocks canon_block r) op.Ir.regions;
        (* constant folding *)
        (match fold_op op with
        | Some value ->
          let c =
            Ir.create_op
              ~attrs:[ ("value", Attr.Int value) ]
              ~result_tys:[ (Ir.result op 0).Ir.ty ]
              "arith.constant"
          in
          c.Ir.parent <- Some block;
          Ir.replace_uses_in_region f.Func.body ~old_v:(Ir.result op 0)
            ~new_v:(Ir.result c 0);
          kept := c :: !kept
        | None ->
          if cse_eligible op then begin
            let key = cse_key op in
            match Hashtbl.find_opt memo key with
            | Some prior ->
              Array.iteri
                (fun i (v : Ir.value) ->
                  Ir.replace_uses_in_region f.Func.body ~old_v:v
                    ~new_v:prior.Ir.results.(i))
                op.Ir.results
            | None ->
              Hashtbl.replace memo key op;
              kept := op :: !kept
          end
          else kept := op :: !kept))
      block;
    Ir.set_block_ops block (List.rev !kept)
  in
  Ir.iter_blocks canon_block f.Func.body;
  Dce.run_on_func f

let pass =
  Pass.create ~name:"canonicalize" (fun m -> List.iter run_on_func m.Func.funcs)
