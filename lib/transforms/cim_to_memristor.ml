(* cim -> memristor device lowering (paper §3.2.5): materializes cim ops
   with the memristor device primitives, extending the OCC flow. A
   cim.execute whose body is a single cinm.gemm becomes

     memristor.store_tile  (program the stationary operand - NVM writes)
     memristor.copy_tile   (stage the streamed operand in the DACs)
     memristor.gemm_tile   (analog MVM per input row)

   on the tile chosen by the round-robin tile-hint assignment (the
   cim-parallel unrolled executes land on distinct tiles). Execute bodies
   that are not a recognized crossbar primitive are inlined as host code
   ("all other operations are lowered to the host instructions"). *)

open Cinm_ir
open Cinm_dialects

(* Round-robin tile hints over the executes of each function, in program
   order (run before the conversion). *)
let assign_tile_hints ~tiles (m : Func.modul) =
  List.iter
    (fun f ->
      let counter = ref 0 in
      Func.walk
        (fun op ->
          if op.Ir.name = "cim.execute" then begin
            Ir.set_attr op "tile_hint" (Attr.Int (!counter mod max 1 tiles));
            incr counter
          end)
        f)
    m.Func.funcs

let assign_pass ~tiles =
  Pass.create ~name:"cim-assign-tiles" (fun m -> assign_tile_hints ~tiles m)

(* Recognize an execute body of the form: [cinm.gemm(arg0, arg1); yield]. *)
let single_gemm_body (op : Ir.op) =
  let body = Ir.entry_block (Ir.region op 0) in
  match Ir.block_ops body with
  | [ gemm; yield_op ]
    when gemm.Ir.name = "cinm.gemm"
         && yield_op.Ir.name = "cim.yield"
         && Ir.num_operands yield_op = 1
         && (Ir.operand yield_op 0).Ir.vid = (Ir.result gemm 0).Ir.vid
         && Array.length body.Ir.args = 2
         && (Ir.operand gemm 0).Ir.vid = body.Ir.args.(0).Ir.vid
         && (Ir.operand gemm 1).Ir.vid = body.Ir.args.(1).Ir.vid ->
    true
  | _ -> false

let pattern : Rewrite.pattern =
 fun ctx op ->
  let b = ctx.Rewrite.b in
  match op.Ir.name with
  | "cim.acquire" ->
    let rows = Ir.int_attr op "rows"
    and cols = Ir.int_attr op "cols"
    and tiles = Ir.int_attr op "tiles" in
    Some (Rewrite.Replace [ Memristor_d.alloc b ~rows ~cols ~tiles ])
  | "cim.write" ->
    let id = Rewrite.operand ctx op 0 and w = Rewrite.operand ctx op 1 in
    Memristor_d.store_tile b id ~tile:0 w;
    Some Rewrite.Erase
  | "cim.execute" when single_gemm_body op ->
    let id = Rewrite.operand ctx op 0 in
    let a_tile = Rewrite.operand ctx op 1 in
    let b_tile = Rewrite.operand ctx op 2 in
    let tile = match Ir.attr op "tile_hint" with Some (Attr.Int t) -> t | _ -> 0 in
    Memristor_d.store_tile b id ~tile b_tile;
    Memristor_d.copy_tile b id ~tile a_tile;
    let result_ty = (Ir.result op 0).Ir.ty in
    Some (Rewrite.Replace [ Memristor_d.gemm_tile b id ~tile ~result_ty ])
  | "cim.execute" ->
    (* unrecognized device computation: run it on the host *)
    let inputs = List.init (Ir.num_operands op - 1) (fun i -> Rewrite.operand ctx op (i + 1)) in
    let results =
      Transform_util.inline_body ~remap:(Rewrite.lookup ctx) b (Ir.region op 0) inputs
    in
    Some (Rewrite.Replace results)
  | "cim.barrier" ->
    let id = Rewrite.operand ctx op 0 in
    Memristor_d.barrier b id;
    Some Rewrite.Erase
  | "cim.release" ->
    let id = Rewrite.operand ctx op 0 in
    Memristor_d.release b id;
    Some Rewrite.Erase
  | _ -> None

let pass = Pass.of_patterns ~name:"cim-to-memristor" [ pattern ]
