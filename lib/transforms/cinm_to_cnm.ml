(* cinm -> cnm lowering (paper §3.2.3, Fig. 6a): rewrite cinm compute ops
   annotated with target = "cnm" into workgroup allocation, scatter /
   launch / gather sequences with tiling.

   Tiling follows the paper: the GEMM M dimension is chunked across the
   workgroup's PUs (Fig. 9 "rectangular" tiling) with an scf.for over row
   chunks when one launch cannot cover all rows; the stationary operand is
   broadcast once into a DPU-shared (level 1) buffer. Multi-launch
   decompositions implement reduce (partial + host merge), scan (local
   scan + host carry propagation + add-offsets launch, the classic CNM
   scan), histogram (private histograms merged with cinm.merge_partial,
   cf. §3.2.5) and sim_search (overlap-scattered windows with in-kernel
   top-k selection and host merge). *)

open Cinm_ir
open Cinm_dialects

type options = {
  dpus : int;
  tasklets : int;
  optimize : bool;  (** cinm-opt: WRAM-aware kernel style + interchange *)
  max_rows_per_launch : int;  (** bound on per-PU rows per launch (chunking) *)
}

let default_options = { dpus = 512; tasklets = 16; optimize = false; max_rows_per_launch = 64 }

let style opts = if opts.optimize then "wram" else "naive"

let is_cnm_target op =
  match Ir.attr op "target" with Some (Attr.Str "cnm") -> true | _ -> false

let dtype_of (v : Ir.value) = Option.get (Types.element_dtype v.Ir.ty)
let shape_of (v : Ir.value) = Option.get (Types.shape_of v.Ir.ty)

(* ----- kernel bodies (cnm level: scalar loops over buffer memrefs) ----- *)

(* C[i,j] = sum_k A[i,k] * B[k,j]. The optimized variant interchanges to
   (i, k, j) with a row accumulator pattern for WRAM locality; both orders
   compute the same values. *)
let const_zero bb dt =
  if Types.is_float_dtype dt then Arith.constant_f bb ~ty:(Types.Scalar dt) 0.0
  else Arith.constant bb ~ty:(Types.Scalar dt) 0

(* An integer literal (e.g. a folded splat in an RPN chain) materialized
   at the element dtype, so i8/i16 chains don't mix in i32 constants and
   float chains get a float constant. *)
let const_of_int bb dt c =
  if Types.is_float_dtype dt then
    Arith.constant_f bb ~ty:(Types.Scalar dt) (float_of_int c)
  else Arith.constant bb ~ty:(Types.Scalar dt) c

(* Scalar op for a named cinm binop, dispatched on the operand dtype:
   float operands take the f-suffixed arith ops (and/or/xor stay
   integer-only, matching the cinm verifier). *)
let scalar_binop bb name x y =
  let is_f =
    match Types.element_dtype x.Ir.ty with
    | Some dt -> Types.is_float_dtype dt
    | None -> false
  in
  if is_f then
    match name with
    | "add" -> Arith.addf bb x y
    | "sub" -> Arith.subf bb x y
    | "mul" -> Arith.mulf bb x y
    | "div" -> Arith.divf bb x y
    | "min" -> Arith.minf bb x y
    | "max" -> Arith.maxf bb x y
    | _ -> invalid_arg ("Cinm_to_cnm: no float scalar op for " ^ name)
  else
    match name with
    | "add" -> Arith.addi bb x y
    | "sub" -> Arith.subi bb x y
    | "mul" -> Arith.muli bb x y
    | "div" -> Arith.divsi bb x y
    | "min" -> Arith.minsi bb x y
    | "max" -> Arith.maxsi bb x y
    | "and" -> Arith.andi bb x y
    | "or" -> Arith.ori bb x y
    | "xor" -> Arith.xori bb x y
    | _ -> invalid_arg ("Cinm_to_cnm: no scalar op for " ^ name)

let gemm_body opts ~r ~k_dim ~n bb (args : Ir.value array) =
  let a_m = args.(0) and b_m = args.(1) and c_m = args.(2) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cr = Arith.const_index bb r in
  let ck = Arith.const_index bb k_dim in
  let cn = Arith.const_index bb n in
  let zero = const_zero bb (dtype_of a_m) in
  if opts.optimize then
    (* i, k, j: stream A once, accumulate into the C row *)
    Scf_d.for0 bb ~lb:c0 ~ub:cr ~step:c1 (fun bb i ->
        Scf_d.for0 bb ~lb:c0 ~ub:cn ~step:c1 (fun bb j ->
            Memref_d.store bb zero c_m [ i; j ]);
        Scf_d.for0 bb ~lb:c0 ~ub:ck ~step:c1 (fun bb k ->
            let a = Memref_d.load bb a_m [ i; k ] in
            Scf_d.for0 bb ~lb:c0 ~ub:cn ~step:c1 (fun bb j ->
                let bv = Memref_d.load bb b_m [ k; j ] in
                let acc = Memref_d.load bb c_m [ i; j ] in
                let prod = scalar_binop bb "mul" a bv in
                Memref_d.store bb (scalar_binop bb "add" acc prod) c_m [ i; j ])))
  else
    (* i, j, k: dot product per output element *)
    Scf_d.for0 bb ~lb:c0 ~ub:cr ~step:c1 (fun bb i ->
        Scf_d.for0 bb ~lb:c0 ~ub:cn ~step:c1 (fun bb j ->
            let acc =
              Scf_d.for_ bb ~lb:c0 ~ub:ck ~step:c1 ~init:[ zero ] (fun bb k iters ->
                  let a = Memref_d.load bb a_m [ i; k ] in
                  let bv = Memref_d.load bb b_m [ k; j ] in
                  [ scalar_binop bb "add" iters.(0) (scalar_binop bb "mul" a bv) ])
            in
            Memref_d.store bb (List.hd acc) c_m [ i; j ]))

(* Fused elementwise chain: evaluate the RPN per element; the expression
   is compile-time, so this generates straight-line scalar code. *)
let ew_expr_body ~tokens ~n_inputs ~l bb (args : Ir.value array) =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let out_m = args.(n_inputs) in
  let dt = dtype_of out_m in
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
      let v =
        Cinm_d.eval_rpn ~tokens
          ~input:(fun k -> Memref_d.load bb args.(k) [ i ])
          ~const:(fun c -> const_of_int bb dt c)
          ~apply:(fun name a b2 -> scalar_binop bb name a b2)
      in
      Memref_d.store bb v out_m [ i ])

let ew_body ~opname ~l bb (args : Ir.value array) =
  let a_m = args.(0) and b_m = args.(1) and c_m = args.(2) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
      let a = Memref_d.load bb a_m [ i ] in
      let bv = Memref_d.load bb b_m [ i ] in
      Memref_d.store bb (scalar_binop bb opname a bv) c_m [ i ])

let reduce_body ~opname ~l bb (args : Ir.value array) =
  let a_m = args.(0) and c_m = args.(1) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let init = Memref_d.load bb a_m [ c0 ] in
  let acc =
    Scf_d.for_ bb ~lb:c1 ~ub:cl ~step:c1 ~init:[ init ] (fun bb i iters ->
        [ scalar_binop bb opname iters.(0) (Memref_d.load bb a_m [ i ]) ])
  in
  Memref_d.store bb (List.hd acc) c_m [ c0 ]

let histogram_body ~l bb (args : Ir.value array) =
  let a_m = args.(0) and h_m = args.(1) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let one = Arith.constant bb 1 in
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
      let v = Memref_d.load bb a_m [ i ] in
      let idx = Arith.index_cast bb v ~to_ty:Types.Index in
      let cur = Memref_d.load bb h_m [ idx ] in
      Memref_d.store bb (Arith.addi bb cur one) h_m [ idx ])

(* [pre]: optional fused elementwise chain (RPN tokens) evaluated on the
   [n_inputs] input buffers before scanning (sel's predicate + scan). *)
let scan_local_body ?pre ?(n_inputs = 1) ~opname ~l bb (args : Ir.value array) =
  let s_m = args.(n_inputs) and t_m = args.(n_inputs + 1) in
  let elem bb i =
    match pre with
    | None -> Memref_d.load bb args.(0) [ i ]
    | Some tokens ->
      Cinm_d.eval_rpn ~tokens
        ~input:(fun k -> Memref_d.load bb args.(k) [ i ])
        ~const:(fun c -> Arith.constant bb c)
        ~apply:(fun name a b2 -> scalar_binop bb name a b2)
  in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let first = elem bb c0 in
  Memref_d.store bb first s_m [ c0 ];
  let total =
    Scf_d.for_ bb ~lb:c1 ~ub:cl ~step:c1 ~init:[ first ] (fun bb i iters ->
        let v = elem bb i in
        let acc = scalar_binop bb opname iters.(0) v in
        Memref_d.store bb acc s_m [ i ];
        [ acc ])
  in
  Memref_d.store bb (List.hd total) t_m [ c0 ]

let scan_add_body ~opname ~l bb (args : Ir.value array) =
  let s_m = args.(0) and off_m = args.(1) and f_m = args.(2) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let off = Memref_d.load bb off_m [ c0 ] in
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
      let v = Memref_d.load bb s_m [ i ] in
      Memref_d.store bb (scalar_binop bb opname v off) f_m [ i ])

(* Per-PU top-k selection over the PU's [l]-element chunk: k selection
   passes write the best values and their global indices (base + local). *)
let topk_body ~k ~l bb (args : Ir.value array) =
  let a_m = args.(0) and base_m = args.(1) in
  let v_m = args.(2) and i_m = args.(3) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let ck = Arith.const_index bb k in
  let zero = Arith.constant bb 0 in
  let min_int32 = Arith.constant bb (-0x80000000) in
  let scratch = Memref_d.alloc bb [| l |] Types.I32 in
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb i ->
      Memref_d.store bb (Memref_d.load bb a_m [ i ]) scratch [ i ]);
  let base = Memref_d.load bb base_m [ c0 ] in
  Scf_d.for0 bb ~lb:c0 ~ub:ck ~step:c1 (fun bb j ->
      let best =
        Scf_d.for_ bb ~lb:c0 ~ub:cl ~step:c1 ~init:[ min_int32; zero ]
          (fun bb w iters ->
            let v = Memref_d.load bb scratch [ w ] in
            let better = Arith.cmpi bb Arith.Sgt v iters.(0) in
            let w_i32 = Arith.index_cast bb w ~to_ty:(Types.Scalar Types.I32) in
            [ Arith.select bb better v iters.(0); Arith.select bb better w_i32 iters.(1) ])
      in
      match best with
      | [ best_v; best_w ] ->
        Memref_d.store bb best_v v_m [ j ];
        Memref_d.store bb (Arith.addi bb best_w base) i_m [ j ];
        let w_idx = Arith.index_cast bb best_w ~to_ty:Types.Index in
        Memref_d.store bb min_int32 scratch [ w_idx ]
      | _ -> assert false)

(* Per-PU similarity search over [l] windows of length [m]; the [k] best
   scores and their global indices (base + local) are selection-sorted
   into the output buffers. *)
let simsearch_body ~metric ~k ~m ~l bb (args : Ir.value array) =
  let db_m = args.(0) and q_m = args.(1) and base_m = args.(2) in
  let v_m = args.(3) and i_m = args.(4) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cl = Arith.const_index bb l in
  let cm = Arith.const_index bb m in
  let ck = Arith.const_index bb k in
  let zero = Arith.constant bb 0 in
  let min_int32 = Arith.constant bb (-0x80000000) in
  let scores = Memref_d.alloc bb [| l |] Types.I32 in
  (* score each window *)
  Scf_d.for0 bb ~lb:c0 ~ub:cl ~step:c1 (fun bb w ->
      let score =
        Scf_d.for_ bb ~lb:c0 ~ub:cm ~step:c1 ~init:[ zero ] (fun bb j iters ->
            let d = Memref_d.load bb db_m [ Arith.addi bb w j ] in
            let q = Memref_d.load bb q_m [ j ] in
            let contrib =
              match metric with
              | "dot" -> Arith.muli bb d q
              | "l2" ->
                let diff = Arith.subi bb d q in
                Arith.subi bb zero (Arith.muli bb diff diff)
              | _ -> invalid_arg ("simsearch kernel: metric " ^ metric)
            in
            [ Arith.addi bb iters.(0) contrib ])
      in
      Memref_d.store bb (List.hd score) scores [ w ]);
  (* k selection passes *)
  let base = Memref_d.load bb base_m [ c0 ] in
  Scf_d.for0 bb ~lb:c0 ~ub:ck ~step:c1 (fun bb j ->
      let best =
        Scf_d.for_ bb ~lb:c0 ~ub:cl ~step:c1
          ~init:[ min_int32; zero ]
          (fun bb w iters ->
            let s = Memref_d.load bb scores [ w ] in
            let better = Arith.cmpi bb Arith.Sgt s iters.(0) in
            let w_i32 = Arith.index_cast bb w ~to_ty:(Types.Scalar Types.I32) in
            [ Arith.select bb better s iters.(0); Arith.select bb better w_i32 iters.(1) ])
      in
      match best with
      | [ best_v; best_w ] ->
        Memref_d.store bb best_v v_m [ j ];
        Memref_d.store bb (Arith.addi bb best_w base) i_m [ j ];
        (* knock out the selected window *)
        let w_idx = Arith.index_cast bb best_w ~to_ty:Types.Index in
        Memref_d.store bb min_int32 scores [ w_idx ]
      | _ -> assert false)

(* ----- lowering helpers ----- *)

let launch_attrs opts ~kernel extra =
  (("kernel", Attr.Str kernel) :: ("style", Attr.Str (style opts)) :: extra)

let tok_op (tok : Ir.value) =
  match tok.Ir.def with
  | Ir.Op_result (op, _) -> op
  | Ir.Block_arg _ -> invalid_arg "expected op result"

let launch b wg ~ins ~outs ~attrs body =
  let tok = Cnm_d.launch b wg ~ins ~outs body in
  List.iter (fun (key, v) -> Ir.set_attr (tok_op tok) key v) attrs;
  tok

(* Pad a tensor's leading dimension up to [target] rows. *)
let pad_rows b v ~target =
  let shape = shape_of v in
  let rows = shape.(0) in
  if rows = target then v
  else begin
    let high = Array.make (Array.length shape) 0 in
    high.(0) <- target - rows;
    Tensor_d.pad b v ~low:(Array.make (Array.length shape) 0) ~high
  end

(* GEMM lowering: returns the [M, N] result value. *)
let lower_gemm opts b a_val b_val =
  let dt = dtype_of a_val in
  let m, k_dim =
    match shape_of a_val with
    | [| m; k |] -> (m, k)
    | _ -> invalid_arg "lower_gemm: A must be rank 2"
  in
  let n = (shape_of b_val).(1) in
  let p = opts.dpus * opts.tasklets in
  let r = max 1 (min opts.max_rows_per_launch (Cinm_support.Util.ceil_div m p)) in
  let chunk_rows = p * r in
  let chunks = Cinm_support.Util.ceil_div m chunk_rows in
  let m_pad = chunks * chunk_rows in
  let a_pad = pad_rows b a_val ~target:m_pad in
  let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
  (* stationary operand: broadcast once, shared per DPU (level 1) *)
  let b_buf = Cnm_d.alloc b wg ~shape:[| k_dim; n |] ~dtype:dt ~level:1 in
  let tok_b = Cnm_d.scatter b b_val b_buf wg ~map:"broadcast" in
  let c_init = Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| m_pad; n |], dt) ] in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let c_chunks = Arith.const_index b chunks in
  let c_chunk_rows = Arith.const_index b chunk_rows in
  let results =
    Scf_d.for_ b ~lb:c0 ~ub:c_chunks ~step:c1 ~init:[ c_init ] (fun bb ci iters ->
        let off = Arith.muli bb ci c_chunk_rows in
        let zero_i = Arith.const_index bb 0 in
        let a_tile =
          Tensor_d.extract_slice bb a_pad ~offsets:[| 0; 0 |] ~sizes:[| chunk_rows; k_dim |]
            ~dyn_offsets:[ off; zero_i ]
        in
        let a_buf = Cnm_d.alloc bb wg ~shape:[| r; k_dim |] ~dtype:dt ~level:0 in
        let tok_a = Cnm_d.scatter bb a_tile a_buf wg ~map:"block" in
        let c_buf = Cnm_d.alloc bb wg ~shape:[| r; n |] ~dtype:dt ~level:0 in
        let tok_l =
          launch bb wg ~ins:[ a_buf; b_buf ] ~outs:[ c_buf ]
            ~attrs:(launch_attrs opts ~kernel:"gemm" [])
            (gemm_body opts ~r ~k_dim ~n)
        in
        let c_tile, tok_g = Cnm_d.gather bb c_buf wg ~result_shape:[| chunk_rows; n |] in
        Cnm_d.wait bb [ tok_b; tok_a; tok_l; tok_g ];
        let acc =
          Tensor_d.insert_slice bb c_tile iters.(0) ~offsets:[| 0; 0 |]
            ~dyn_offsets:[ off; zero_i ]
        in
        [ acc ])
  in
  let c_pad = List.hd results in
  if m_pad = m then c_pad
  else Tensor_d.extract_slice b c_pad ~offsets:[| 0; 0 |] ~sizes:[| m; n |] ~dyn_offsets:[]

(* Elementwise lowering over flattened operands. *)
let lower_elementwise opts b ~opname a_val b_val =
  let dt = dtype_of a_val in
  let orig_shape = shape_of a_val in
  let n = Cinm_support.Util.product_of_shape orig_shape in
  let a_flat = Cinm_d.expand b a_val ~shape:[| n |] in
  let b_flat = Cinm_d.expand b b_val ~shape:[| n |] in
  let p = opts.dpus * opts.tasklets in
  let l = Cinm_support.Util.ceil_div n p in
  let n_pad = p * l in
  let a_pad = pad_rows b a_flat ~target:n_pad in
  let b_pad = pad_rows b b_flat ~target:n_pad in
  let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
  let a_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
  let b_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
  let c_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
  let t1 = Cnm_d.scatter b a_pad a_buf wg ~map:"block" in
  let t2 = Cnm_d.scatter b b_pad b_buf wg ~map:"block" in
  let tl =
    launch b wg ~ins:[ a_buf; b_buf ] ~outs:[ c_buf ]
      ~attrs:(launch_attrs opts ~kernel:"ew" [ ("op", Attr.Str opname) ])
      (ew_body ~opname ~l)
  in
  let c_pad, tg = Cnm_d.gather b c_buf wg ~result_shape:[| n_pad |] in
  Cnm_d.wait b [ t1; t2; tl; tg ];
  let c_flat =
    if n_pad = n then c_pad
    else Tensor_d.extract_slice b c_pad ~offsets:[| 0 |] ~sizes:[| n |] ~dyn_offsets:[]
  in
  Cinm_d.expand b c_flat ~shape:orig_shape

(* Fused elementwise chain lowering: one launch for the whole chain. *)
let lower_ew_expr opts b ~tokens inputs =
  let first = List.hd inputs in
  let dt = dtype_of first in
  let orig_shape = shape_of first in
  let n = Cinm_support.Util.product_of_shape orig_shape in
  let p = opts.dpus * opts.tasklets in
  let l = Cinm_support.Util.ceil_div n p in
  let n_pad = p * l in
  let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
  let n_inputs = List.length inputs in
  let in_bufs, in_toks =
    List.split
      (List.map
         (fun input ->
           let flat = Cinm_d.expand b input ~shape:[| n |] in
           let padded = pad_rows b flat ~target:n_pad in
           let buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
           (buf, Cnm_d.scatter b padded buf wg ~map:"block"))
         inputs)
  in
  let c_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
  let tl =
    launch b wg ~ins:in_bufs ~outs:[ c_buf ]
      ~attrs:(launch_attrs opts ~kernel:"ew_expr" [ ("expr", Attr.Strs tokens) ])
      (ew_expr_body ~tokens ~n_inputs ~l)
  in
  let c_pad, tg = Cnm_d.gather b c_buf wg ~result_shape:[| n_pad |] in
  Cnm_d.wait b (in_toks @ [ tl; tg ]);
  let c_flat =
    if n_pad = n then c_pad
    else Tensor_d.extract_slice b c_pad ~offsets:[| 0 |] ~sizes:[| n |] ~dyn_offsets:[]
  in
  Cinm_d.expand b c_flat ~shape:orig_shape

(* Reduce lowering: per-PU partials + host-side final cinm.reduce. Only
   applies when the PU count divides the element count (no padding, so any
   monoid is safe); otherwise the op stays on the host. *)
let lower_reduce opts b ~opname a_val =
  let dt = dtype_of a_val in
  let n = Cinm_support.Util.product_of_shape (shape_of a_val) in
  let p = opts.dpus * opts.tasklets in
  if n mod p <> 0 || n / p < 1 then None
  else begin
    let l = n / p in
    let a_flat = Cinm_d.expand b a_val ~shape:[| n |] in
    let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
    let a_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
    let r_buf = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:dt ~level:0 in
    let t1 = Cnm_d.scatter b a_flat a_buf wg ~map:"block" in
    let tl =
      launch b wg ~ins:[ a_buf ] ~outs:[ r_buf ]
        ~attrs:(launch_attrs opts ~kernel:"reduce" [ ("op", Attr.Str opname) ])
        (reduce_body ~opname ~l)
    in
    let partials, tg = Cnm_d.gather b r_buf wg ~result_shape:[| p |] in
    Cnm_d.wait b [ t1; tl; tg ];
    Some (Cinm_d.reduce b ~op:opname partials)
  end

(* Histogram lowering: per-PU private histograms merged on the host with
   cinm.merge_partial (paper §3.2.5). *)
let lower_histogram opts b ~bins a_val =
  let dt = dtype_of a_val in
  let n = Cinm_support.Util.product_of_shape (shape_of a_val) in
  let p = opts.dpus * opts.tasklets in
  if n mod p <> 0 then None
  else begin
    let l = n / p in
    let a_flat = Cinm_d.expand b a_val ~shape:[| n |] in
    let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
    let a_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
    let h_buf = Cnm_d.alloc b wg ~shape:[| bins |] ~dtype:dt ~level:0 in
    let t1 = Cnm_d.scatter b a_flat a_buf wg ~map:"block" in
    let tl =
      launch b wg ~ins:[ a_buf ] ~outs:[ h_buf ]
        ~attrs:(launch_attrs opts ~kernel:"histogram" [ ("bins", Attr.Int bins) ])
        (histogram_body ~l)
    in
    let partials, tg = Cnm_d.gather b h_buf wg ~result_shape:[| p * bins |] in
    Cnm_d.wait b [ t1; tl; tg ];
    (* host merge: acc = merge_partial(acc, partial_p) *)
    let zero = Arith.constant b 0 in
    let acc0 = Builder.build1 b "tensor.splat" ~operands:[ zero ] ~result_tys:[ Types.Tensor ([| bins |], dt) ] in
    let c0 = Arith.const_index b 0 in
    let c1 = Arith.const_index b 1 in
    let cp = Arith.const_index b p in
    let c_bins = Arith.const_index b bins in
    let merged =
      Scf_d.for_ b ~lb:c0 ~ub:cp ~step:c1 ~init:[ acc0 ] (fun bb pi iters ->
          let off = Arith.muli bb pi c_bins in
          let part =
            Tensor_d.extract_slice bb partials ~offsets:[| 0 |] ~sizes:[| bins |]
              ~dyn_offsets:[ off ]
          in
          [ Cinm_d.merge_partial bb ~op:"add" iters.(0) part ])
    in
    Some (List.hd merged)
  end

(* Scan lowering: local scan per PU, host carry propagation, second launch
   to add the per-PU offsets. A fused scan ([pre] tokens from ew-fusion)
   evaluates its elementwise chain inside the first kernel. *)
let lower_scan opts b ~opname ?pre inputs =
  let a_val = List.hd inputs in
  let dt = dtype_of a_val in
  let n = Cinm_support.Util.product_of_shape (shape_of a_val) in
  let p = opts.dpus * opts.tasklets in
  if opname <> "add" || n mod p <> 0 then None
  else begin
    let l = n / p in
    let n_inputs = List.length inputs in
    let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
    let in_bufs, in_toks =
      List.split
        (List.map
           (fun input ->
             let flat = Cinm_d.expand b input ~shape:[| n |] in
             let buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
             (buf, Cnm_d.scatter b flat buf wg ~map:"block"))
           inputs)
    in
    let s_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
    let t_buf = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:dt ~level:0 in
    let pre_attrs =
      match pre with Some tokens -> [ ("pre_expr", Attr.Strs tokens) ] | None -> []
    in
    let tl1 =
      launch b wg ~ins:in_bufs ~outs:[ s_buf; t_buf ]
        ~attrs:(launch_attrs opts ~kernel:"scan_local" (("op", Attr.Str opname) :: pre_attrs))
        (scan_local_body ?pre ~n_inputs ~opname ~l)
    in
    let t1 = List.hd in_toks in
    let totals, tg1 = Cnm_d.gather b t_buf wg ~result_shape:[| p |] in
    Cnm_d.wait b (in_toks @ [ t1; tl1; tg1 ]);
    (* exclusive scan of totals on the host: offsets = inclusive - totals *)
    let inclusive = Cinm_d.scan b ~op:opname totals in
    let offsets = Cinm_d.sub b inclusive totals in
    let o_buf = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:dt ~level:0 in
    let t2 = Cnm_d.scatter b offsets o_buf wg ~map:"block" in
    let f_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
    let tl2 =
      launch b wg ~ins:[ s_buf; o_buf ] ~outs:[ f_buf ]
        ~attrs:(launch_attrs opts ~kernel:"scan_add" [ ("op", Attr.Str opname) ])
        (scan_add_body ~opname ~l)
    in
    let final, tg2 = Cnm_d.gather b f_buf wg ~result_shape:[| n |] in
    Cnm_d.wait b [ t2; tl2; tg2 ];
    Some (Cinm_d.expand b final ~shape:(shape_of a_val))
  end

(* Host-side merge of per-PU top-k candidates: pick the global top-k of
   the P*k candidate values, then map positions through the gathered
   global-index tensor. *)
let merge_topk_candidates b ~k all_v all_i =
  let top_v, top_pos = Cinm_d.topk b all_v ~k in
  let final_idx0 =
    Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| k |], Types.I32) ]
  in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let ck = Arith.const_index b k in
  let final_idx =
    Scf_d.for_ b ~lb:c0 ~ub:ck ~step:c1 ~init:[ final_idx0 ] (fun bb j iters ->
        let pos = Tensor_d.extract bb top_pos [ j ] in
        let pos_idx = Arith.index_cast bb pos ~to_ty:Types.Index in
        let global = Tensor_d.extract bb all_i [ pos_idx ] in
        [ Tensor_d.insert bb global iters.(0) [ j ] ])
  in
  (top_v, List.hd final_idx)

(* Per-PU base indices 0, l, 2l, ... as an i32 tensor. *)
let base_indices b ~p ~l =
  let idx = Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| p |], Types.I32) ] in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let cp = Arith.const_index b p in
  let cl = Arith.constant b l in
  List.hd
    (Scf_d.for_ b ~lb:c0 ~ub:cp ~step:c1 ~init:[ idx ] (fun bb pi iters ->
         let pi32 = Arith.index_cast bb pi ~to_ty:(Types.Scalar Types.I32) in
         [ Tensor_d.insert bb (Arith.muli bb pi32 cl) iters.(0) [ pi ] ]))

(* topk lowering: per-PU local selection, host merge of P*k candidates. *)
let lower_topk opts b ~k a_val =
  let dt = dtype_of a_val in
  let n = Cinm_support.Util.product_of_shape (shape_of a_val) in
  let p = opts.dpus * opts.tasklets in
  if n mod p <> 0 || n / p < k then None
  else begin
    let l = n / p in
    let a_flat = Cinm_d.expand b a_val ~shape:[| n |] in
    let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
    let a_buf = Cnm_d.alloc b wg ~shape:[| l |] ~dtype:dt ~level:0 in
    let base_buf = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:Types.I32 ~level:0 in
    let v_buf = Cnm_d.alloc b wg ~shape:[| k |] ~dtype:dt ~level:0 in
    let i_buf = Cnm_d.alloc b wg ~shape:[| k |] ~dtype:Types.I32 ~level:0 in
    let t1 = Cnm_d.scatter b a_flat a_buf wg ~map:"block" in
    let t2 = Cnm_d.scatter b (base_indices b ~p ~l) base_buf wg ~map:"block" in
    let tl =
      launch b wg ~ins:[ a_buf; base_buf ] ~outs:[ v_buf; i_buf ]
        ~attrs:(launch_attrs opts ~kernel:"topk" [ ("k", Attr.Int k) ])
        (topk_body ~k ~l)
    in
    let all_v, tg1 = Cnm_d.gather b v_buf wg ~result_shape:[| p * k |] in
    let all_i, tg2 = Cnm_d.gather b i_buf wg ~result_shape:[| p * k |] in
    Cnm_d.wait b [ t1; t2; tl; tg1; tg2 ];
    Some (merge_topk_candidates b ~k all_v all_i)
  end

(* sim_search lowering: overlap-scatter the database so each PU scores its
   own windows; per-PU top-k in the kernel; host merges the P*k candidates. *)
let lower_simsearch opts b ~metric ~k db_val q_val =
  let dt = dtype_of db_val in
  let n = Cinm_support.Util.product_of_shape (shape_of db_val) in
  let m = Cinm_support.Util.product_of_shape (shape_of q_val) in
  let p = opts.dpus * opts.tasklets in
  let windows = n - m + 1 in
  if metric <> "dot" && metric <> "l2" then None
  else if windows mod p <> 0 || windows / p < k then None
  else begin
    let l = windows / p in
    let wg = Cnm_d.workgroup b ~shape:[| opts.dpus; opts.tasklets |] ~physical_dims:[ "dpu"; "thread" ] in
    let db_buf = Cnm_d.alloc b wg ~shape:[| l + m - 1 |] ~dtype:dt ~level:0 in
    let q_buf = Cnm_d.alloc b wg ~shape:[| m |] ~dtype:dt ~level:1 in
    let base_buf = Cnm_d.alloc b wg ~shape:[| 1 |] ~dtype:Types.I32 ~level:0 in
    let v_buf = Cnm_d.alloc b wg ~shape:[| k |] ~dtype:dt ~level:0 in
    let i_buf = Cnm_d.alloc b wg ~shape:[| k |] ~dtype:Types.I32 ~level:0 in
    let t1 = Cnm_d.scatter b db_val db_buf wg ~halo:(m - 1) ~map:"overlap" in
    let t2 = Cnm_d.scatter b q_val q_buf wg ~map:"broadcast" in
    let t3 = Cnm_d.scatter b (base_indices b ~p ~l) base_buf wg ~map:"block" in
    let tl =
      launch b wg
        ~ins:[ db_buf; q_buf; base_buf ]
        ~outs:[ v_buf; i_buf ]
        ~attrs:
          (launch_attrs opts ~kernel:"simsearch"
             [ ("metric", Attr.Str metric); ("k", Attr.Int k); ("m", Attr.Int m) ])
        (simsearch_body ~metric ~k ~m ~l)
    in
    let all_v, tg1 = Cnm_d.gather b v_buf wg ~result_shape:[| p * k |] in
    let all_i, tg2 = Cnm_d.gather b i_buf wg ~result_shape:[| p * k |] in
    Cnm_d.wait b [ t1; t2; t3; tl; tg1; tg2 ];
    Some (merge_topk_candidates b ~k all_v all_i)
  end

(* ----- the conversion pattern ----- *)

let elementwise_ops = [ "add"; "sub"; "mul"; "div"; "min"; "max"; "and"; "or"; "xor" ]

let pattern opts : Rewrite.pattern =
 fun ctx op ->
  if not (is_cnm_target op) then None
  else begin
    let b = ctx.Rewrite.b in
    let opd i = Rewrite.operand ctx op i in
    let base_name = String.sub op.Ir.name 5 (String.length op.Ir.name - 5) in
    match base_name with
    | "gemm" -> Some (Rewrite.Replace [ lower_gemm opts b (opd 0) (opd 1) ])
    | "gemv" ->
      let a = opd 0 and x = opd 1 in
      let k_dim = (shape_of x).(0) in
      let m = (shape_of a).(0) in
      let x_mat = Cinm_d.expand b x ~shape:[| k_dim; 1 |] in
      let res = lower_gemm opts b a x_mat in
      Some (Rewrite.Replace [ Cinm_d.expand b res ~shape:[| m |] ])
    | _ when List.mem base_name elementwise_ops ->
      Some (Rewrite.Replace [ lower_elementwise opts b ~opname:base_name (opd 0) (opd 1) ])
    | "ew_expr" ->
      let tokens =
        match Ir.attr_exn op "expr" with
        | Attr.Strs l -> l
        | _ -> invalid_arg "cinm.ew_expr: bad expr attribute"
      in
      let inputs = List.init (Ir.num_operands op) opd in
      Some (Rewrite.Replace [ lower_ew_expr opts b ~tokens inputs ])
    | "reduce" -> (
      match lower_reduce opts b ~opname:(Ir.str_attr op "op") (opd 0) with
      | Some v -> Some (Rewrite.Replace [ v ])
      | None -> None)
    | "histogram" -> (
      match lower_histogram opts b ~bins:(Ir.int_attr op "bins") (opd 0) with
      | Some v -> Some (Rewrite.Replace [ v ])
      | None -> None)
    | "scan" -> (
      let pre =
        match Ir.attr op "pre_expr" with Some (Attr.Strs t) -> Some t | _ -> None
      in
      let inputs = List.init (Ir.num_operands op) opd in
      match lower_scan opts b ~opname:(Ir.str_attr op "op") ?pre inputs with
      | Some v -> Some (Rewrite.Replace [ v ])
      | None -> None)
    | "not" ->
      (* ~x = x xor -1: reuse the fused-elementwise machinery *)
      Some
        (Rewrite.Replace
           [ lower_ew_expr opts b ~tokens:[ "in0"; "const-1"; "xor" ] [ opd 0 ] ])
    | "topk" -> (
      match lower_topk opts b ~k:(Ir.int_attr op "k") (opd 0) with
      | Some (v, i) -> Some (Rewrite.Replace [ v; i ])
      | None -> None)
    | "sim_search" -> (
      match
        lower_simsearch opts b ~metric:(Ir.str_attr op "metric") ~k:(Ir.int_attr op "k")
          (opd 0) (opd 1)
      with
      | Some (v, i) -> Some (Rewrite.Replace [ v; i ])
      | None -> None)
    | _ -> None
  end

let pass ?(options = default_options) () =
  Pass.of_patterns ~name:"cinm-to-cnm" [ pattern options ]
