(** cinm -> cnm lowering (paper §3.2.3, Fig. 6a): rewrites cinm compute ops
    annotated target = "cnm" into workgroup allocation and scatter /
    launch / gather sequences with tiling. GEMMs chunk the M dimension
    across the PUs (Fig. 9 rectangular tiling) with the stationary operand
    broadcast once into a DPU-shared buffer; reduce / scan / histogram /
    topk / sim_search get their multi-launch decompositions. The emitted
    cnm.launch carries a kernel descriptor attribute that cnm-to-upmem
    regenerates device-aware kernels from. *)

open Cinm_ir

type options = {
  dpus : int;
  tasklets : int;
  optimize : bool;  (** cinm-opt: WRAM-aware kernel style + interchange *)
  max_rows_per_launch : int;  (** bound on per-PU rows per launch *)
}

val default_options : options

(** A zero constant of the given element dtype ([arith.constant] with a
    float or integer payload as appropriate). *)
val const_zero : Builder.t -> Types.dtype -> Ir.value

(** An integer literal materialized at the element dtype ([constant_f]
    with the converted value for float dtypes). *)
val const_of_int : Builder.t -> Types.dtype -> int -> Ir.value

(** Scalar form of a named cinm binop, dispatched on the operand dtype
    (float operands take the f-suffixed arith ops).
    @raise Invalid_argument on unknown names. *)
val scalar_binop : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value

val pass : ?options:options -> unit -> Pass.t
