(* cinm -> scf host lowering (paper §3.2.5 "Low-level dialects"): cinm ops
   that stay on the host are lowered to scf loop nests over tensor
   elements, the form that would continue to the llvm dialect in the
   paper's flow. The reference interpreter can execute cinm ops directly,
   so this pass is optional in the driver pipelines — it exists for
   completeness, for the cinm_opt tool, and as the model of host code for
   the LoC accounting.

   Applies to ops whose "target" attribute is "host" or absent. *)

open Cinm_ir
open Cinm_dialects

let is_host_target op =
  match Ir.attr op "target" with
  | Some (Attr.Str "host") | None -> true
  | _ -> false

let shape_of (v : Ir.value) = Option.get (Types.shape_of v.Ir.ty)
let dtype_of (v : Ir.value) = Option.get (Types.element_dtype v.Ir.ty)

(* Elementwise over flattened operands, value semantics:
   for i { out = tensor.insert (f a[i] b[i]) out [i] } *)
let lower_elementwise b ~opname x y =
  let shape = shape_of x in
  let dt = dtype_of x in
  let n = Cinm_support.Util.product_of_shape shape in
  let x1 = Cinm_d.expand b x ~shape:[| n |] in
  let y1 = Cinm_d.expand b y ~shape:[| n |] in
  let init = Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| n |], dt) ] in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let cn = Arith.const_index b n in
  let out =
    Scf_d.for_ b ~lb:c0 ~ub:cn ~step:c1 ~init:[ init ] (fun bb i iters ->
        let a = Tensor_d.extract bb x1 [ i ] in
        let c = Tensor_d.extract bb y1 [ i ] in
        [ Tensor_d.insert bb (Cinm_to_cnm.scalar_binop bb opname a c) iters.(0) [ i ] ])
  in
  Cinm_d.expand b (List.hd out) ~shape

let lower_gemm b x y =
  let dt = dtype_of x in
  let m, k_dim =
    match shape_of x with [| m; k |] -> (m, k) | _ -> invalid_arg "cinm-to-scf gemm"
  in
  let n = (shape_of y).(1) in
  let init = Builder.build1 b "tensor.empty" ~result_tys:[ Types.Tensor ([| m; n |], dt) ] in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let cm = Arith.const_index b m in
  let ck = Arith.const_index b k_dim in
  let cn = Arith.const_index b n in
  let zero = Cinm_to_cnm.const_zero b dt in
  let out =
    Scf_d.for_ b ~lb:c0 ~ub:cm ~step:c1 ~init:[ init ] (fun bb i iters ->
        let row =
          Scf_d.for_ bb ~lb:c0 ~ub:cn ~step:c1 ~init:[ iters.(0) ] (fun bb j iters ->
              let acc =
                Scf_d.for_ bb ~lb:c0 ~ub:ck ~step:c1 ~init:[ zero ] (fun bb k iters ->
                    let a = Tensor_d.extract bb x [ i; k ] in
                    let c = Tensor_d.extract bb y [ k; j ] in
                    [ Cinm_to_cnm.scalar_binop bb "add" iters.(0)
                        (Cinm_to_cnm.scalar_binop bb "mul" a c) ])
              in
              [ Tensor_d.insert bb (List.hd acc) iters.(0) [ i; j ] ])
        in
        [ List.hd row ])
  in
  List.hd out

let lower_reduce b ~opname x =
  let shape = shape_of x in
  let n = Cinm_support.Util.product_of_shape shape in
  let x1 = Cinm_d.expand b x ~shape:[| n |] in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let cn = Arith.const_index b n in
  let first = Tensor_d.extract b x1 [ c0 ] in
  let out =
    Scf_d.for_ b ~lb:c1 ~ub:cn ~step:c1 ~init:[ first ] (fun bb i iters ->
        [ Cinm_to_cnm.scalar_binop bb opname iters.(0) (Tensor_d.extract bb x1 [ i ]) ])
  in
  List.hd out

let elementwise_ops = [ "add"; "sub"; "mul"; "div"; "min"; "max"; "and"; "or"; "xor" ]

let pattern : Rewrite.pattern =
 fun ctx op ->
  if Ir.dialect_of op <> "cinm" || not (is_host_target op) then None
  else begin
    let b = ctx.Rewrite.b in
    let opd i = Rewrite.operand ctx op i in
    let base = String.sub op.Ir.name 5 (String.length op.Ir.name - 5) in
    match base with
    | _ when List.mem base elementwise_ops ->
      Some (Rewrite.Replace [ lower_elementwise b ~opname:base (opd 0) (opd 1) ])
    | "gemm" -> Some (Rewrite.Replace [ lower_gemm b (opd 0) (opd 1) ])
    | "gemv" ->
      let x = opd 1 in
      let k_dim = (shape_of x).(0) in
      let m = (shape_of (opd 0)).(0) in
      let x_mat = Cinm_d.expand b x ~shape:[| k_dim; 1 |] in
      let res = lower_gemm b (opd 0) x_mat in
      Some (Rewrite.Replace [ Cinm_d.expand b res ~shape:[| m |] ])
    | "reduce" ->
      Some (Rewrite.Replace [ lower_reduce b ~opname:(Ir.str_attr op "op") (opd 0) ])
    | _ -> None
  end

let pass = Pass.of_patterns ~name:"cinm-to-scf" [ pattern ]
