(* cnm -> upmem device lowering (paper §3.2.5): maps workgroups to DPU
   grids and regenerates launch bodies as device-aware tasklet kernels
   with explicit MRAM<->WRAM staging.

   The launch's "kernel" descriptor attribute (set by cinm-to-cnm)
   selects a device kernel generator; the "style" attribute selects the
   paper's optimization level:
   - "naive" (cinm-nd): straightforward codegen — operand elements are
     DMA'd in small fixed blocks (or per element for irregular accesses),
     re-fetching shared operands as the loop nest demands, with no
     loop interchange;
   - "wram" (cinm-opt-nd): tiles are sized to the WRAM budget assigned to
     each tasklet and loops are interchanged so each staged block is fully
     reused before eviction (paper §4.1.2).
   Launches without a recognized descriptor fall back to a generic
   transformation: stage every buffer in WRAM, inline the original cnm
   body against the staged copies, and write back the outputs. *)

open Cinm_ir
open Cinm_dialects

type options = {
  dpus_per_dimm : int;
  wram_bytes : int;  (** per DPU *)
  naive_block : int;  (** elements per DMA block in naive style *)
}

let default_options = { dpus_per_dimm = 128; wram_bytes = 64 * 1024; naive_block = 64 }

let largest_divisor_leq n cap =
  let cap = max 1 (min n cap) in
  let rec search d = if n mod d = 0 then d else search (d - 1) in
  search cap

(* Per-tasklet WRAM budget in elements (INT32), leaving headroom for the
   stack and kernel locals. *)
let budget_elems opts ~tasklets =
  max 16 (opts.wram_bytes / 4 * 3 / 4 / max 1 tasklets)

(* ----- kernel generators (bodies of upmem.launch) ----- *)

(* Zero a WRAM row of [n] elements. *)
let zero_fill bb wram n =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cn = Arith.const_index bb n in
  let dt = Option.get (Types.element_dtype wram.Ir.ty) in
  let zero = Cinm_to_cnm.const_zero bb dt in
  Scf_d.for0 bb ~lb:c0 ~ub:cn ~step:c1 (fun bb i -> Memref_d.store bb zero wram [ i ])

(* GEMM kernel: per-PU tile A[r,k] x B[k,n] -> C[r,n], all in MRAM. *)
let gemm_kernel opts ~style ~tasklets ~r ~k_dim ~n ~dt bb (args : Ir.value array) =
  let a_mram = args.(0) and b_mram = args.(1) and c_mram = args.(2) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let idx v = Arith.const_index bb v in
  if style = "wram" && n = 1 then begin
    (* gemv: stage the vector once, one dot product per row, results
       written back in a single coalesced DMA *)
    let wram_x = Upmem_d.wram_alloc bb [| k_dim |] dt in
    let wram_row = Upmem_d.wram_alloc bb [| k_dim |] dt in
    let wram_y = Upmem_d.wram_alloc bb [| r |] dt in
    let zero = Cinm_to_cnm.const_zero bb dt in
    Upmem_d.mram_read bb ~mram:b_mram ~wram:wram_x ~mram_off:c0 ~wram_off:c0 ~count:k_dim;
    Scf_d.for0 bb ~lb:c0 ~ub:(idx r) ~step:c1 (fun bb i ->
        let row_off = Arith.muli bb i (idx k_dim) in
        Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_row ~mram_off:row_off ~wram_off:c0
          ~count:k_dim;
        let acc =
          Scf_d.for_ bb ~lb:c0 ~ub:(idx k_dim) ~step:c1 ~init:[ zero ] (fun bb k iters ->
              let a = Memref_d.load bb wram_row [ k ] in
              let xv = Memref_d.load bb wram_x [ k ] in
              [ Cinm_to_cnm.scalar_binop bb "add" iters.(0)
                  (Cinm_to_cnm.scalar_binop bb "mul" a xv) ])
        in
        Memref_d.store bb (List.hd acc) wram_y [ i ]);
    Upmem_d.mram_write bb ~wram:wram_y ~mram:c_mram ~mram_off:c0 ~wram_off:c0 ~count:r
  end
  else if style = "wram" then begin
    (* stage A fully (in row-blocks if needed), B in column blocks sized to
       the WRAM budget; loop order (jb, i, k, j) maximizes block reuse *)
    let budget = budget_elems opts ~tasklets in
    let nb = largest_divisor_leq n (max 1 ((budget - k_dim) / (k_dim + max 1 r))) in
    let rb = largest_divisor_leq r (max 1 ((budget - (k_dim * nb)) / (k_dim + nb))) in
    let wram_a = Upmem_d.wram_alloc bb [| rb; k_dim |] dt in
    let wram_b = Upmem_d.wram_alloc bb [| k_dim; nb |] dt in
    (* flat so zero_fill and the write-back can address it linearly *)
    let wram_c = Upmem_d.wram_alloc bb [| rb * nb |] dt in
    let n_jb = n / nb and n_ib = r / rb in
    Scf_d.for0 bb ~lb:c0 ~ub:(idx n_jb) ~step:c1 (fun bb jb ->
        (* stage B block: one coalesced DMA when the block spans full rows
           (n_jb = 1, e.g. gemv), else k row-transfers of nb elements *)
        let j_off = Arith.muli bb jb (idx nb) in
        if nb = n then
          Upmem_d.mram_read bb ~mram:b_mram ~wram:wram_b ~mram_off:c0 ~wram_off:c0
            ~count:(k_dim * nb)
        else
          Scf_d.for0 bb ~lb:c0 ~ub:(idx k_dim) ~step:c1 (fun bb k ->
              let src = Arith.addi bb (Arith.muli bb k (idx n)) j_off in
              let dst = Arith.muli bb k (idx nb) in
              Upmem_d.mram_read bb ~mram:b_mram ~wram:wram_b ~mram_off:src ~wram_off:dst
                ~count:nb);
        Scf_d.for0 bb ~lb:c0 ~ub:(idx n_ib) ~step:c1 (fun bb ib ->
            let i_off = Arith.muli bb ib (idx rb) in
            (* stage A row block *)
            let a_src = Arith.muli bb i_off (idx k_dim) in
            Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a ~mram_off:a_src ~wram_off:c0
              ~count:(rb * k_dim);
            zero_fill bb wram_c (rb * nb);
            Scf_d.for0 bb ~lb:c0 ~ub:(idx rb) ~step:c1 (fun bb i ->
                let c_row = Arith.muli bb i (idx nb) in
                Scf_d.for0 bb ~lb:c0 ~ub:(idx k_dim) ~step:c1 (fun bb k ->
                    let a = Memref_d.load bb wram_a [ i; k ] in
                    Scf_d.for0 bb ~lb:c0 ~ub:(idx nb) ~step:c1 (fun bb j ->
                        let bv = Memref_d.load bb wram_b [ k; j ] in
                        let cj = Arith.addi bb c_row j in
                        let acc = Memref_d.load bb wram_c [ cj ] in
                        Memref_d.store bb
                          (Cinm_to_cnm.scalar_binop bb "add" acc
                             (Cinm_to_cnm.scalar_binop bb "mul" a bv))
                          wram_c [ cj ])));
            (* write C block back, row by row (strided in MRAM) *)
            Scf_d.for0 bb ~lb:c0 ~ub:(idx rb) ~step:c1 (fun bb i ->
                let row = Arith.addi bb i_off i in
                let dst = Arith.addi bb (Arith.muli bb row (idx n)) j_off in
                let src = Arith.muli bb i (idx nb) in
                Upmem_d.mram_write bb ~wram:wram_c ~mram:c_mram ~mram_off:dst
                  ~wram_off:src ~count:nb)))
  end
  else begin
    (* naive (cinm-nd): A elements fetched one by one, B rows re-fetched
       per output row, and the result row written back element-wise — no
       DMA coalescing, the straightforward codegen the WRAM-aware variant
       improves on *)
    let wram_a1 = Upmem_d.wram_alloc bb [| 1 |] dt in
    let wram_b = Upmem_d.wram_alloc bb [| n |] dt in
    let wram_c = Upmem_d.wram_alloc bb [| n |] dt in
    Scf_d.for0 bb ~lb:c0 ~ub:(idx r) ~step:c1 (fun bb i ->
        zero_fill bb wram_c n;
        Scf_d.for0 bb ~lb:c0 ~ub:(idx k_dim) ~step:c1 (fun bb k ->
            let a_off = Arith.addi bb (Arith.muli bb i (idx k_dim)) k in
            Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a1 ~mram_off:a_off ~wram_off:c0
              ~count:1;
            let b_off = Arith.muli bb k (idx n) in
            Upmem_d.mram_read bb ~mram:b_mram ~wram:wram_b ~mram_off:b_off ~wram_off:c0
              ~count:n;
            let a = Memref_d.load bb wram_a1 [ c0 ] in
            Scf_d.for0 bb ~lb:c0 ~ub:(idx n) ~step:c1 (fun bb j ->
                let bv = Memref_d.load bb wram_b [ j ] in
                let acc = Memref_d.load bb wram_c [ j ] in
                Memref_d.store bb
                  (Cinm_to_cnm.scalar_binop bb "add" acc
                     (Cinm_to_cnm.scalar_binop bb "mul" a bv))
                  wram_c [ j ]));
        let c_off = Arith.muli bb i (idx n) in
        Upmem_d.mram_write bb ~wram:wram_c ~mram:c_mram ~mram_off:c_off ~wram_off:c0
          ~count:n)
  end

(* Streaming kernels (elementwise, reduce, scan, histogram) share a block
   loop: data is DMA'd in blocks of [bs] elements and processed in WRAM. *)
let block_size opts ~style ~tasklets l =
  if style = "wram" then largest_divisor_leq l (budget_elems opts ~tasklets / 4)
  else largest_divisor_leq l opts.naive_block

let foreach_block bb ~l ~bs f =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let n_blocks = l / bs in
  Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb n_blocks) ~step:c1 (fun bb blk ->
      let off = Arith.muli bb blk (Arith.const_index bb bs) in
      f bb ~off)

let ew_kernel opts ~style ~tasklets ~opname ~l ~dt bb (args : Ir.value array) =
  let a_mram = args.(0) and b_mram = args.(1) and c_mram = args.(2) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_a = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_b = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_c = Upmem_d.wram_alloc bb [| bs |] dt in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a ~mram_off:off ~wram_off:c0 ~count:bs;
      Upmem_d.mram_read bb ~mram:b_mram ~wram:wram_b ~mram_off:off ~wram_off:c0 ~count:bs;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let a = Memref_d.load bb wram_a [ i ] in
          let bv = Memref_d.load bb wram_b [ i ] in
          Memref_d.store bb (Cinm_to_cnm.scalar_binop bb opname a bv) wram_c [ i ]);
      Upmem_d.mram_write bb ~wram:wram_c ~mram:c_mram ~mram_off:off ~wram_off:c0 ~count:bs)

let ew_expr_kernel opts ~style ~tasklets ~tokens ~n_inputs ~l ~dt bb
    (args : Ir.value array) =
  let bs = block_size opts ~style ~tasklets l in
  let wram_ins = Array.init n_inputs (fun _ -> Upmem_d.wram_alloc bb [| bs |] dt) in
  let wram_out = Upmem_d.wram_alloc bb [| bs |] dt in
  let out_mram = args.(n_inputs) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  foreach_block bb ~l ~bs (fun bb ~off ->
      Array.iteri
        (fun k wram ->
          Upmem_d.mram_read bb ~mram:args.(k) ~wram ~mram_off:off ~wram_off:c0 ~count:bs)
        wram_ins;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let v =
            Cinm_d.eval_rpn ~tokens
              ~input:(fun k -> Memref_d.load bb wram_ins.(k) [ i ])
              ~const:(fun c -> Cinm_to_cnm.const_of_int bb dt c)
              ~apply:(fun name a b2 -> Cinm_to_cnm.scalar_binop bb name a b2)
          in
          Memref_d.store bb v wram_out [ i ]);
      Upmem_d.mram_write bb ~wram:wram_out ~mram:out_mram ~mram_off:off ~wram_off:c0
        ~count:bs)

let reduce_kernel opts ~style ~tasklets ~opname ~l ~dt bb (args : Ir.value array) =
  let a_mram = args.(0) and r_mram = args.(1) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_a = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_r = Upmem_d.wram_alloc bb [| 1 |] dt in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  (* first element seeds the accumulator so any monoid works *)
  Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_r ~mram_off:c0 ~wram_off:c0 ~count:1;
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a ~mram_off:off ~wram_off:c0 ~count:bs;
      let is_first_block = Arith.cmpi bb Arith.Eq off c0 in
      let lb_val =
        (* skip element 0 of the very first block (already the seed) *)
        List.hd (Scf_d.if_ bb is_first_block
          ~then_:(fun _ -> [ c1 ])
          ~else_:(fun _ -> [ c0 ])
          ~result_tys:[ Types.Index ])
      in
      Scf_d.for0 bb ~lb:lb_val ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let acc = Memref_d.load bb wram_r [ c0 ] in
          let v = Memref_d.load bb wram_a [ i ] in
          Memref_d.store bb (Cinm_to_cnm.scalar_binop bb opname acc v) wram_r [ c0 ]));
  Upmem_d.mram_write bb ~wram:wram_r ~mram:r_mram ~mram_off:c0 ~wram_off:c0 ~count:1

let histogram_kernel opts ~style ~tasklets ~bins ~l ~dt bb (args : Ir.value array) =
  let a_mram = args.(0) and h_mram = args.(1) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_a = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_h = Upmem_d.wram_alloc bb [| bins |] dt in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let one = Arith.constant bb 1 in
  zero_fill bb wram_h bins;
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a ~mram_off:off ~wram_off:c0 ~count:bs;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let v = Memref_d.load bb wram_a [ i ] in
          let slot = Arith.index_cast bb v ~to_ty:Types.Index in
          let cur = Memref_d.load bb wram_h [ slot ] in
          Memref_d.store bb (Arith.addi bb cur one) wram_h [ slot ]));
  Upmem_d.mram_write bb ~wram:wram_h ~mram:h_mram ~mram_off:c0 ~wram_off:c0 ~count:bins

let scan_local_kernel opts ~style ~tasklets ~opname ?pre ?(n_inputs = 1) ~l ~dt bb
    (args : Ir.value array) =
  let s_mram = args.(n_inputs) and t_mram = args.(n_inputs + 1) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_ins = Array.init n_inputs (fun _ -> Upmem_d.wram_alloc bb [| bs |] dt) in
  let wram_s = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_t = Upmem_d.wram_alloc bb [| 1 |] dt in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let zero = Cinm_to_cnm.const_zero bb dt in
  let elem bb i =
    match pre with
    | None -> Memref_d.load bb wram_ins.(0) [ i ]
    | Some tokens ->
      Cinm_d.eval_rpn ~tokens
        ~input:(fun k -> Memref_d.load bb wram_ins.(k) [ i ])
        ~const:(fun c -> Cinm_to_cnm.const_of_int bb dt c)
        ~apply:(fun name a b2 -> Cinm_to_cnm.scalar_binop bb name a b2)
  in
  Memref_d.store bb zero wram_t [ c0 ];
  foreach_block bb ~l ~bs (fun bb ~off ->
      Array.iteri
        (fun k wram ->
          Upmem_d.mram_read bb ~mram:args.(k) ~wram ~mram_off:off ~wram_off:c0 ~count:bs)
        wram_ins;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let carry = Memref_d.load bb wram_t [ c0 ] in
          let v = elem bb i in
          let acc = Cinm_to_cnm.scalar_binop bb opname carry v in
          Memref_d.store bb acc wram_s [ i ];
          Memref_d.store bb acc wram_t [ c0 ]);
      Upmem_d.mram_write bb ~wram:wram_s ~mram:s_mram ~mram_off:off ~wram_off:c0 ~count:bs);
  Upmem_d.mram_write bb ~wram:wram_t ~mram:t_mram ~mram_off:c0 ~wram_off:c0 ~count:1

let scan_add_kernel opts ~style ~tasklets ~opname ~l ~dt bb (args : Ir.value array) =
  let s_mram = args.(0) and o_mram = args.(1) and f_mram = args.(2) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_s = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_o = Upmem_d.wram_alloc bb [| 1 |] dt in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  Upmem_d.mram_read bb ~mram:o_mram ~wram:wram_o ~mram_off:c0 ~wram_off:c0 ~count:1;
  let off_v = Memref_d.load bb wram_o [ c0 ] in
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:s_mram ~wram:wram_s ~mram_off:off ~wram_off:c0 ~count:bs;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb i ->
          let v = Memref_d.load bb wram_s [ i ] in
          Memref_d.store bb (Cinm_to_cnm.scalar_binop bb opname v off_v) wram_s [ i ]);
      Upmem_d.mram_write bb ~wram:wram_s ~mram:f_mram ~mram_off:off ~wram_off:c0 ~count:bs)

(* Incremental top-k maintenance in WRAM, with host-identical tie
   semantics (value desc, global index asc): a candidate displaces the
   current worst entry (smallest value; among equals, largest index). *)
let topk_insert bb ~k ~wram_v ~wram_i s gw =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let worst =
    Scf_d.for_ bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1
      ~init:
        [ Memref_d.load bb wram_v [ c0 ]; Memref_d.load bb wram_i [ c0 ];
          Arith.constant bb 0 ]
      (fun bb j iters ->
        let v = Memref_d.load bb wram_v [ j ] in
        let i = Memref_d.load bb wram_i [ j ] in
        let lt = Arith.cmpi bb Arith.Slt v iters.(0) in
        let eq = Arith.cmpi bb Arith.Eq v iters.(0) in
        let later = Arith.cmpi bb Arith.Sgt i iters.(1) in
        let worse = Arith.ori bb lt (Arith.andi bb eq later) in
        let j32 = Arith.index_cast bb j ~to_ty:(Types.Scalar Types.I32) in
        [
          Arith.select bb worse v iters.(0);
          Arith.select bb worse i iters.(1);
          Arith.select bb worse j32 iters.(2);
        ])
  in
  match worst with
  | [ wv; wi; wj ] ->
    let gt = Arith.cmpi bb Arith.Sgt s wv in
    let eq = Arith.cmpi bb Arith.Eq s wv in
    let earlier = Arith.cmpi bb Arith.Slt gw wi in
    let better = Arith.ori bb gt (Arith.andi bb eq earlier) in
    ignore
      (Scf_d.if_ bb better
         ~then_:(fun bb ->
           let slot = Arith.index_cast bb wj ~to_ty:Types.Index in
           Memref_d.store bb s wram_v [ slot ];
           Memref_d.store bb gw wram_i [ slot ];
           [])
         ~else_:(fun _ -> [])
         ~result_tys:[])
  | _ -> assert false

(* Guarded insert: a cheap threshold test against the cached minimum
   filters out the common case; the full (tie-exact) insertion and the
   min-cache refresh only run for genuine candidates. *)
let topk_insert_guarded bb ~k ~wram_v ~wram_i ~wram_min s gw =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let cur_min = Memref_d.load bb wram_min [ c0 ] in
  let maybe = Arith.cmpi bb Arith.Sge s cur_min in
  ignore
    (Scf_d.if_ bb maybe
       ~then_:(fun bb ->
         topk_insert bb ~k ~wram_v ~wram_i s gw;
         let fresh_min =
           Scf_d.for_ bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1
             ~init:[ Memref_d.load bb wram_v [ c0 ] ]
             (fun bb j iters ->
               [ Arith.minsi bb iters.(0) (Memref_d.load bb wram_v [ j ]) ])
         in
         Memref_d.store bb (List.hd fresh_min) wram_min [ c0 ];
         [])
       ~else_:(fun _ -> [])
       ~result_tys:[])

(* Selection-sort the k entries by (value desc, index asc), matching the
   host cinm.topk ordering. *)
let topk_sort bb ~k ~wram_v ~wram_i =
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1 (fun bb a ->
      let best =
        Scf_d.for_ bb ~lb:a ~ub:(Arith.const_index bb k) ~step:c1
          ~init:
            [ Memref_d.load bb wram_v [ a ]; Memref_d.load bb wram_i [ a ];
              Arith.index_cast bb a ~to_ty:(Types.Scalar Types.I32) ]
          (fun bb j iters ->
            let v = Memref_d.load bb wram_v [ j ] in
            let i = Memref_d.load bb wram_i [ j ] in
            let gt = Arith.cmpi bb Arith.Sgt v iters.(0) in
            let eq = Arith.cmpi bb Arith.Eq v iters.(0) in
            let earlier = Arith.cmpi bb Arith.Slt i iters.(1) in
            let better = Arith.ori bb gt (Arith.andi bb eq earlier) in
            let j32 = Arith.index_cast bb j ~to_ty:(Types.Scalar Types.I32) in
            [
              Arith.select bb better v iters.(0);
              Arith.select bb better i iters.(1);
              Arith.select bb better j32 iters.(2);
            ])
      in
      match best with
      | [ bv; bi; bj ] ->
        let slot = Arith.index_cast bb bj ~to_ty:Types.Index in
        (* swap entry [a] with the best of the tail *)
        let av = Memref_d.load bb wram_v [ a ] in
        let ai = Memref_d.load bb wram_i [ a ] in
        Memref_d.store bb bv wram_v [ a ];
        Memref_d.store bb bi wram_i [ a ];
        Memref_d.store bb av wram_v [ slot ];
        Memref_d.store bb ai wram_i [ slot ];
        ()
      | _ -> assert false)

let simsearch_kernel opts ~style:_ ~tasklets ~metric ~k ~m ~l ~dt bb (args : Ir.value array) =
  let db_mram = args.(0) and q_mram = args.(1) and base_mram = args.(2) in
  let v_mram = args.(3) and i_mram = args.(4) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let zero = Arith.constant bb 0 in
  let min_int32 = Arith.constant bb (-0x80000000) in
  (* window blocks sized to the per-tasklet WRAM budget *)
  let budget = budget_elems opts ~tasklets in
  let bs = largest_divisor_leq l (max 1 ((budget - (2 * m) - (2 * k)) / 2)) in
  let wram_db = Upmem_d.wram_alloc bb [| bs + m - 1 |] dt in
  let wram_q = Upmem_d.wram_alloc bb [| m |] dt in
  let wram_base = Upmem_d.wram_alloc bb [| 1 |] Types.I32 in
  let wram_v = Upmem_d.wram_alloc bb [| k |] dt in
  let wram_i = Upmem_d.wram_alloc bb [| k |] Types.I32 in
  let wram_min = Upmem_d.wram_alloc bb [| 1 |] dt in
  Memref_d.store bb min_int32 wram_min [ c0 ];
  Upmem_d.mram_read bb ~mram:q_mram ~wram:wram_q ~mram_off:c0 ~wram_off:c0 ~count:m;
  Upmem_d.mram_read bb ~mram:base_mram ~wram:wram_base ~mram_off:c0 ~wram_off:c0 ~count:1;
  Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1 (fun bb j ->
      Memref_d.store bb min_int32 wram_v [ j ];
      Memref_d.store bb zero wram_i [ j ]);
  let base = Memref_d.load bb wram_base [ c0 ] in
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:db_mram ~wram:wram_db ~mram_off:off ~wram_off:c0
        ~count:(bs + m - 1);
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb w ->
          let score =
            Scf_d.for_ bb ~lb:c0 ~ub:(Arith.const_index bb m) ~step:c1 ~init:[ zero ]
              (fun bb j iters ->
                let d = Memref_d.load bb wram_db [ Arith.addi bb w j ] in
                let q = Memref_d.load bb wram_q [ j ] in
                let contrib =
                  match metric with
                  | "dot" -> Arith.muli bb d q
                  | "l2" ->
                    let diff = Arith.subi bb d q in
                    Arith.subi bb zero (Arith.muli bb diff diff)
                  | _ -> invalid_arg ("simsearch kernel: metric " ^ metric)
                in
                [ Arith.addi bb iters.(0) contrib ])
          in
          let off32 = Arith.index_cast bb off ~to_ty:(Types.Scalar Types.I32) in
          let w32 = Arith.index_cast bb w ~to_ty:(Types.Scalar Types.I32) in
          let gw = Arith.addi bb base (Arith.addi bb off32 w32) in
          topk_insert_guarded bb ~k ~wram_v ~wram_i ~wram_min (List.hd score) gw));
  topk_sort bb ~k ~wram_v ~wram_i;
  Upmem_d.mram_write bb ~wram:wram_v ~mram:v_mram ~mram_off:c0 ~wram_off:c0 ~count:k;
  Upmem_d.mram_write bb ~wram:wram_i ~mram:i_mram ~mram_off:c0 ~wram_off:c0 ~count:k

(* Top-k kernel: blocked streaming of the PU's chunk with incremental
   top-k maintenance (host-identical ordering after the final sort). *)
let topk_kernel opts ~style ~tasklets ~k ~l ~dt bb (args : Ir.value array) =
  let a_mram = args.(0) and base_mram = args.(1) in
  let v_mram = args.(2) and i_mram = args.(3) in
  let c0 = Arith.const_index bb 0 in
  let c1 = Arith.const_index bb 1 in
  let zero = Arith.constant bb 0 in
  let min_int32 = Arith.constant bb (-0x80000000) in
  let bs = block_size opts ~style ~tasklets l in
  let wram_a = Upmem_d.wram_alloc bb [| bs |] dt in
  let wram_base = Upmem_d.wram_alloc bb [| 1 |] Types.I32 in
  let wram_v = Upmem_d.wram_alloc bb [| k |] dt in
  let wram_i = Upmem_d.wram_alloc bb [| k |] Types.I32 in
  let wram_min = Upmem_d.wram_alloc bb [| 1 |] dt in
  Memref_d.store bb min_int32 wram_min [ c0 ];
  Upmem_d.mram_read bb ~mram:base_mram ~wram:wram_base ~mram_off:c0 ~wram_off:c0 ~count:1;
  Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb k) ~step:c1 (fun bb j ->
      Memref_d.store bb min_int32 wram_v [ j ];
      Memref_d.store bb zero wram_i [ j ]);
  let base = Memref_d.load bb wram_base [ c0 ] in
  foreach_block bb ~l ~bs (fun bb ~off ->
      Upmem_d.mram_read bb ~mram:a_mram ~wram:wram_a ~mram_off:off ~wram_off:c0 ~count:bs;
      Scf_d.for0 bb ~lb:c0 ~ub:(Arith.const_index bb bs) ~step:c1 (fun bb w ->
          let v = Memref_d.load bb wram_a [ w ] in
          let off32 = Arith.index_cast bb off ~to_ty:(Types.Scalar Types.I32) in
          let w32 = Arith.index_cast bb w ~to_ty:(Types.Scalar Types.I32) in
          let gw = Arith.addi bb base (Arith.addi bb off32 w32) in
          topk_insert_guarded bb ~k ~wram_v ~wram_i ~wram_min v gw));
  topk_sort bb ~k ~wram_v ~wram_i;
  Upmem_d.mram_write bb ~wram:wram_v ~mram:v_mram ~mram_off:c0 ~wram_off:c0 ~count:k;
  Upmem_d.mram_write bb ~wram:wram_i ~mram:i_mram ~mram_off:c0 ~wram_off:c0 ~count:k

(* Fallback: stage every buffer whole, inline the original cnm body on the
   staged copies, write the outputs back. *)
let inline_region_into bb region (new_args : Ir.value array) =
  let entry = Ir.entry_block region in
  let vmap = ref Ir.Vmap.empty in
  Array.iteri
    (fun i (arg : Ir.value) -> vmap := Ir.Vmap.add arg.Ir.vid new_args.(i) !vmap)
    entry.Ir.args;
  Ir.iter_ops
    (fun (op : Ir.op) ->
      if op.Ir.name <> "cnm.terminator" then begin
        let op', vmap' = Ir.clone_op ~vmap:!vmap op in
        vmap := vmap';
        Builder.insert bb op'
      end)
    entry

let generic_kernel ~orig_region ~n_inputs ~buf_shapes ~dts bb (args : Ir.value array) =
  let c0 = Arith.const_index bb 0 in
  let staged =
    Array.mapi
      (fun i mram ->
        let shape = buf_shapes.(i) in
        let n = Cinm_support.Util.product_of_shape shape in
        let wram = Upmem_d.wram_alloc bb shape dts.(i) in
        if i < n_inputs then
          Upmem_d.mram_read bb ~mram ~wram ~mram_off:c0 ~wram_off:c0 ~count:n;
        wram)
      args
  in
  inline_region_into bb orig_region staged;
  Array.iteri
    (fun i mram ->
      if i >= n_inputs then begin
        let n = Cinm_support.Util.product_of_shape buf_shapes.(i) in
        Upmem_d.mram_write bb ~wram:staged.(i) ~mram ~mram_off:c0 ~wram_off:c0 ~count:n
      end)
    args

(* ----- the conversion patterns ----- *)

(* Static WRAM budget check: the kernel generators' allocations are all
   compile-time, so overcommitting the 64 kB scratchpad is a compile
   error, not a runtime surprise. Shared buffers count once per DPU;
   private ones once per tasklet. *)
let check_wram_budget opts ~tasklets (launch_tok : Ir.value) =
  match launch_tok.Ir.def with
  | Ir.Op_result (launch_op, _) ->
    let private_bytes = ref 0 and shared_bytes = ref 0 in
    Ir.walk_region
      (fun o ->
        match (o.Ir.name, (o.Ir.results.(0)).Ir.ty) with
        | "upmem.wram_alloc", ty -> private_bytes := !private_bytes + Types.size_in_bytes ty
        | "upmem.wram_shared_alloc", ty ->
          shared_bytes := !shared_bytes + Types.size_in_bytes ty
        | _ -> ()
        | exception Invalid_argument _ -> ())
      (Ir.region launch_op 0);
    let total = (!private_bytes * tasklets) + !shared_bytes in
    if total > opts.wram_bytes then
      invalid_arg
        (Printf.sprintf
           "cnm-to-upmem: kernel needs %d B of WRAM (%d B/tasklet x %d + %d B shared)             but the DPU has %d B"
           total !private_bytes tasklets !shared_bytes opts.wram_bytes)
  | Ir.Block_arg _ -> ()

let buffer_info (v : Ir.value) =
  match v.Ir.ty with
  | Types.Buffer { shape; dtype; level } -> (shape, dtype, level)
  | ty -> invalid_arg ("cnm-to-upmem: expected buffer, got " ^ Types.to_string ty)

let pattern opts : Rewrite.pattern =
 fun ctx op ->
  let b = ctx.Rewrite.b in
  match op.Ir.name with
  | "cnm.workgroup" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.Workgroup [| dpus; tasklets |] ->
      let dimms = Cinm_support.Util.ceil_div dpus opts.dpus_per_dimm in
      Some (Rewrite.Replace [ Upmem_d.alloc_dpus b ~dimms ~dpus ~tasklets ])
    | _ -> None)
  | "cnm.alloc" ->
    let wg = Rewrite.operand ctx op 0 in
    let shape, dtype, level = buffer_info (Ir.result op 0) in
    Some (Rewrite.Replace [ Upmem_d.alloc b wg ~shape ~dtype ~level ])
  | "cnm.scatter" ->
    let tensor = Rewrite.operand ctx op 0 in
    let buf = Rewrite.operand ctx op 1 in
    let wg = Rewrite.operand ctx op 2 in
    let halo = match Ir.attr op "halo" with Some (Attr.Int h) -> Some h | _ -> None in
    Some (Rewrite.Replace [ Upmem_d.scatter b ?halo tensor buf wg ~map:(Ir.str_attr op "map") ])
  | "cnm.gather" ->
    let buf = Rewrite.operand ctx op 0 in
    let wg = Rewrite.operand ctx op 1 in
    let result_shape = Option.get (Types.shape_of (Ir.result op 0).Ir.ty) in
    let t, tok = Upmem_d.gather b buf wg ~result_shape in
    Some (Rewrite.Replace [ t; tok ])
  | "cnm.launch" ->
    let wg = Rewrite.operand ctx op 0 in
    let tasklets =
      match wg.Ir.ty with
      | Types.Workgroup [| _; t |] -> t
      | _ -> invalid_arg "cnm-to-upmem: launch workgroup must be 2D"
    in
    let n_inputs = Ir.int_attr op "n_inputs" in
    let n_buffers = Ir.num_operands op - 1 in
    let buffers = List.init n_buffers (fun i -> Rewrite.operand ctx op (i + 1)) in
    let orig_buffers = List.init n_buffers (fun i -> Ir.operand op (i + 1)) in
    let ins = Cinm_support.Util.list_take n_inputs buffers in
    let outs = List.filteri (fun i _ -> i >= n_inputs) buffers in
    let style =
      match Ir.attr op "style" with Some (Attr.Str s) -> s | _ -> "naive"
    in
    let kernel =
      match Ir.attr op "kernel" with Some (Attr.Str k) -> k | _ -> "generic"
    in
    let shapes = List.map (fun v -> let s, _, _ = buffer_info v in s) orig_buffers in
    let dts = List.map (fun v -> let _, d, _ = buffer_info v in d) orig_buffers in
    let dt = List.hd dts in
    let body =
      match kernel with
      | "gemm" -> (
        match shapes with
        | [ [| r; k_dim |]; [| _; n |]; _ ] ->
          gemm_kernel opts ~style ~tasklets ~r ~k_dim ~n ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad gemm buffers")
      | "ew" -> (
        match shapes with
        | [| l |] :: _ ->
          ew_kernel opts ~style ~tasklets ~opname:(Ir.str_attr op "op") ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad ew buffers")
      | "ew_expr" -> (
        let tokens =
          match Ir.attr_exn op "expr" with
          | Attr.Strs l -> l
          | _ -> invalid_arg "cnm-to-upmem: bad ew_expr attribute"
        in
        match shapes with
        | [| l |] :: _ ->
          ew_expr_kernel opts ~style ~tasklets ~tokens ~n_inputs ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad ew_expr buffers")
      | "reduce" -> (
        match shapes with
        | [| l |] :: _ ->
          reduce_kernel opts ~style ~tasklets ~opname:(Ir.str_attr op "op") ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad reduce buffers")
      | "histogram" -> (
        match shapes with
        | [ [| l |]; [| bins |] ] -> histogram_kernel opts ~style ~tasklets ~bins ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad histogram buffers")
      | "scan_local" -> (
        let pre =
          match Ir.attr op "pre_expr" with Some (Attr.Strs t) -> Some t | _ -> None
        in
        match shapes with
        | [| l |] :: _ ->
          scan_local_kernel opts ~style ~tasklets ~opname:(Ir.str_attr op "op") ?pre
            ~n_inputs ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad scan buffers")
      | "scan_add" -> (
        match shapes with
        | [| l |] :: _ ->
          scan_add_kernel opts ~style ~tasklets ~opname:(Ir.str_attr op "op") ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad scan buffers")
      | "topk" -> (
        let k = Ir.int_attr op "k" in
        match shapes with
        | [| l |] :: _ -> topk_kernel opts ~style ~tasklets ~k ~l ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad topk buffers")
      | "simsearch" -> (
        let k = Ir.int_attr op "k" and m = Ir.int_attr op "m" in
        match shapes with
        | [| lm |] :: _ ->
          simsearch_kernel opts ~style ~tasklets ~metric:(Ir.str_attr op "metric") ~k ~m
            ~l:(lm - m + 1) ~dt
        | _ -> invalid_arg "cnm-to-upmem: bad simsearch buffers")
      | _ ->
        generic_kernel ~orig_region:(Ir.region op 0) ~n_inputs
          ~buf_shapes:(Array.of_list shapes) ~dts:(Array.of_list dts)
    in
    let tok = Upmem_d.launch b wg ~tasklets ~ins ~outs body in
    check_wram_budget opts ~tasklets tok;
    (* preserve descriptor attrs for inspection *)
    List.iter
      (fun (key, v) -> if key <> "n_inputs" && key <> "tasklets" then
          match tok.Ir.def with
          | Ir.Op_result (launch_op, _) -> Ir.set_attr launch_op key v
          | _ -> ())
      op.Ir.attrs;
    Some (Rewrite.Replace [ tok ])
  | _ -> None

let pass ?(options = default_options) () =
  Pass.of_patterns ~name:"cnm-to-upmem" [ pattern options ]
