(* Device cost-model interface (paper §3.3): device dialects register cost
   models when loaded; the cinm target-selection pass queries them to
   compare candidate devices. The paper leaves model development to future
   work but provides the mechanism — as do we, plus simple reference
   models derived from the simulator constants so the mechanism is
   exercised end to end. *)

open Cinm_ir

type t = {
  device : string;  (** "cim" | "cnm" | "host" *)
  model_name : string;
  estimate : Ir.op -> float option;
      (** estimated execution time in seconds, [None] if unsupported *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 4

let register m = Hashtbl.replace registry m.device m

let clear () = Hashtbl.reset registry

let registered () = Hashtbl.fold (fun _ m acc -> m :: acc) registry []

let lookup device = Hashtbl.find_opt registry device

(* Pick the device with the lowest estimate among those that can run the
   op; [None] when no model covers it. *)
let best_device op =
  let candidates =
    List.filter_map
      (fun m -> Option.map (fun t -> (m.device, t)) (m.estimate op))
      (registered ())
  in
  match List.sort (fun (_, a) (_, b) -> compare a b) candidates with
  | (device, _) :: _ -> Some device
  | [] -> None

(* ----- reference models (derived from the simulator constants) ----- *)

let gemm_dims op =
  if (op.Ir.name <> "cinm.gemm" && op.Ir.name <> "cinm.gemv") || Ir.num_operands op < 2
  then None
  else
    match
      (Types.shape_of (Ir.operand op 0).Ir.ty, Types.shape_of (Ir.operand op 1).Ir.ty)
    with
    | Some [| m; k |], Some [| _; n |] when op.Ir.name = "cinm.gemm" -> Some (m, k, n)
    | Some [| m; k |], Some [| _ |] when op.Ir.name = "cinm.gemv" -> Some (m, k, 1)
    | _ -> None

let elements op =
  if Ir.num_operands op = 0 then 0
  else match Types.shape_of (Ir.operand op 0).Ir.ty with
    | Some shape -> Cinm_support.Util.product_of_shape shape
    | None -> 0

(* Crossbar model: MVM rows at t_mvm each, plus programming of each K x N
   tile once. *)
let cim_reference ?(rows = 64) ?(cols = 64) ?(t_mvm = 100e-9) ?(t_write_row = 500e-9) () =
  {
    device = "cim";
    model_name = "crossbar-analytic";
    estimate =
      (fun op ->
        match gemm_dims op with
        | Some (m, k, n) ->
          let k_tiles = Cinm_support.Util.ceil_div k rows in
          let n_tiles = Cinm_support.Util.ceil_div n cols in
          let program = float_of_int (k_tiles * n_tiles * rows) *. t_write_row in
          let compute = float_of_int (m * k_tiles * n_tiles) *. t_mvm in
          Some (program +. compute)
        | None -> None);
  }

(* UPMEM model: weighted op throughput across all DPUs plus host transfers.
   [gemm_cycles]/[ew_cycles] are per-MAC / per-element DPU cycle costs;
   the defaults describe ideal hand-written kernels, while the partitioner
   passes costs calibrated to the interpreted-kernel simulator. *)
let cnm_reference ?(dpus = 2048) ?(freq = 350e6) ?(host_bw = 7e9)
    ?(gemm_cycles = 12.0) ?(ew_cycles = 4.0) () =
  {
    device = "cnm";
    model_name = "upmem-analytic";
    estimate =
      (fun op ->
        let n = elements op in
        if n = 0 then None
        else
          let work_cycles =
            match gemm_dims op with
            | Some (m, k, n') -> float_of_int (m * k * n') *. gemm_cycles
            | None -> float_of_int n *. ew_cycles
          in
          let transfer = float_of_int (n * 4) /. host_bw in
          Some ((work_cycles /. (freq *. float_of_int dpus)) +. transfer));
  }

(* CAM/RTM model (C4CAM/PIRM-class): a similarity search programs the
   database rows once, then each of the k results costs one parallel
   search; a popcount shifts the data into RTM tracks and issues
   transverse reads over every bit-plane. Constants mirror the cam_sim
   defaults. *)
let cam_reference ?(t_search = 10e-9) ?(t_write_entry = 200e-9) ?(tracks = 64)
    ?(tr_distance = 8.0) ?(t_shift = 1e-9) ?(t_transverse_read = 2e-9) () =
  {
    device = "cam";
    model_name = "cam-analytic";
    estimate =
      (fun op ->
        match op.Ir.name with
        | "cinm.sim_search" -> (
          (* the database's windows become CAM entries (cinm_to_cam): a
             flat [n] database with an [m] query programs n-m+1 rows *)
          let entries =
            match
              ( Types.shape_of (Ir.operand op 0).Ir.ty,
                Types.shape_of (Ir.operand op 1).Ir.ty )
            with
            | Some [| n |], Some [| m |] when n >= m -> Some (n - m + 1)
            | Some [| entries; _ |], _ -> Some entries
            | _ -> None
          in
          match entries with
          | Some entries ->
            let k =
              match Ir.attr op "k" with Some (Attr.Int k) -> k | _ -> 1
            in
            Some
              ((float_of_int entries *. t_write_entry)
              +. (float_of_int k *. t_search))
          | None -> None)
        | "cinm.pop_count" ->
          let n = elements op in
          if n = 0 then None
          else
            let domains = Cinm_support.Util.ceil_div n tracks in
            let shifts = 32 * n / tracks in
            let reads =
              int_of_float (ceil (32.0 *. float_of_int domains /. tr_distance))
            in
            Some
              ((float_of_int shifts *. t_shift)
              +. (float_of_int reads *. t_transverse_read))
        | _ -> None);
  }

let host_reference ?(gops = 50e9) () =
  {
    device = "host";
    model_name = "host-analytic";
    estimate =
      (fun op ->
        let work =
          match gemm_dims op with
          | Some (m, k, n) -> float_of_int (m * k * n)
          | None -> (
            match op.Ir.name with
            | "cinm.sim_search" -> (
              (* scoring every window costs windows x query-width MACs,
                 matching the interpreter's accounting *)
              match
                ( Types.shape_of (Ir.operand op 0).Ir.ty,
                  Types.shape_of (Ir.operand op 1).Ir.ty )
              with
              | Some dbs, Some qs ->
                let n = Cinm_support.Util.product_of_shape dbs in
                let m = Cinm_support.Util.product_of_shape qs in
                (* hamming scoring is xor + popcount per element, ~3x the
                   cycles of a multiply-accumulate on a scalar core *)
                let per_elt =
                  match Ir.attr op "metric" with
                  | Some (Attr.Str "hamming") -> 3.0
                  | _ -> 1.0
                in
                float_of_int (max 1 (n - m + 1) * m) *. per_elt
              | _ -> 0.0)
            | _ -> float_of_int (elements op))
        in
        if work = 0.0 then None else Some (work /. gops));
  }

let register_reference_models () =
  register (cim_reference ());
  register (cnm_reference ());
  register (host_reference ())
