(** Device cost-model interface (paper §3.3): device dialects register
    models; target selection queries them to compare candidate devices. *)

type t = {
  device : string;  (** "cim" | "cnm" | "host" *)
  model_name : string;
  estimate : Cinm_ir.Ir.op -> float option;
      (** estimated seconds; [None] when the op is unsupported *)
}

val register : t -> unit
val clear : unit -> unit
val registered : unit -> t list
val lookup : string -> t option

(** The cheapest device that can run the op, if any model covers it. *)
val best_device : Cinm_ir.Ir.op -> string option

(** Reference models derived from the simulator constants. *)
val cim_reference :
  ?rows:int -> ?cols:int -> ?t_mvm:float -> ?t_write_row:float -> unit -> t

(** [gemm_cycles]/[ew_cycles]: DPU cycles per MAC / per element (defaults
    describe ideal hand-written kernels). *)
val cnm_reference :
  ?dpus:int ->
  ?freq:float ->
  ?host_bw:float ->
  ?gemm_cycles:float ->
  ?ew_cycles:float ->
  unit ->
  t

(** CAM similarity-search / RTM popcount model (constants mirror the
    cam_sim defaults); covers [cinm.sim_search] and [cinm.pop_count]. *)
val cam_reference :
  ?t_search:float ->
  ?t_write_entry:float ->
  ?tracks:int ->
  ?tr_distance:float ->
  ?t_shift:float ->
  ?t_transverse_read:float ->
  unit ->
  t

val host_reference : ?gops:float -> unit -> t
val register_reference_models : unit -> unit
