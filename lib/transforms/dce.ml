(* Dead code elimination for pure, region-free ops. Runs to fixpoint;
   used after fusion folds elementwise chains into cinm.ew_expr ops,
   leaving the original chain dead. *)

open Cinm_ir

let pure_dialects = [ "arith"; "tensor"; "linalg"; "tosa"; "cinm" ]

let is_removable (op : Ir.op) =
  Array.length op.Ir.regions = 0
  && Array.length op.Ir.results > 0
  && List.mem (Ir.dialect_of op) pure_dialects

let run_on_func (f : Func.t) =
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 256 in
    Func.walk
      (fun op ->
        Array.iter (fun (v : Ir.value) -> Hashtbl.replace used v.Ir.vid ()) op.Ir.operands)
      f;
    let prune (block : Ir.block) =
      let keep op =
        (not (is_removable op))
        || Array.exists (fun (v : Ir.value) -> Hashtbl.mem used v.Ir.vid) op.Ir.results
      in
      if Ir.filter_ops_in_place keep block then changed := true
    in
    let rec prune_region (region : Ir.region) =
      Ir.iter_blocks
        (fun block ->
          prune block;
          Ir.iter_ops (fun op -> Array.iter prune_region op.Ir.regions) block)
        region
    in
    prune_region f.Func.body
  done

let pass = Pass.create ~name:"dce" (fun m -> List.iter run_on_func m.Func.funcs)
