(* Elementwise fusion at the cinm level (paper §2.4: "libraries use kernels
   as-is, while compilers like ours, if the device supports it, can fuse
   operations to reduce the data movement").

   A chain of cinm elementwise ops whose intermediate results have a
   single use is folded into one cinm.ew_expr carrying the chain as an RPN
   expression; tensor.splat constants become literals. The subsequent
   cinm-to-cnm lowering then emits a single launch for the whole chain
   instead of one launch (with full scatter/gather traffic) per op. *)

open Cinm_ir

let fusable_names =
  List.map (fun n -> "cinm." ^ n) [ "add"; "sub"; "mul"; "div"; "min"; "max"; "and"; "or"; "xor" ]

let opname_of op = String.sub op.Ir.name 5 (String.length op.Ir.name - 5)

let is_fusable (op : Ir.op) =
  List.mem op.Ir.name fusable_names
  &&
  match Ir.attr op "target" with
  | Some (Attr.Str "cnm") | None -> true
  | _ -> false

let splat_constant (v : Ir.value) =
  match v.Ir.def with
  | Ir.Op_result (op, 0) when op.Ir.name = "tensor.splat" ->
    Transform_util.constant_of (Ir.operand op 0)
  | _ -> None

(* Count uses of every value in the function. *)
let use_counts (f : Func.t) =
  let counts = Hashtbl.create 256 in
  Func.walk
    (fun op ->
      Array.iter
        (fun (v : Ir.value) ->
          Hashtbl.replace counts v.Ir.vid
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.Ir.vid)))
        op.Ir.operands)
    f;
  counts

(* Map from value id to its unique consumer, when there is exactly one. *)
let sole_consumers (f : Func.t) =
  let consumers = Hashtbl.create 256 in
  Func.walk
    (fun op ->
      Array.iter
        (fun (v : Ir.value) ->
          match Hashtbl.find_opt consumers v.Ir.vid with
          | None -> Hashtbl.replace consumers v.Ir.vid (Some op)
          | Some _ -> Hashtbl.replace consumers v.Ir.vid None)
        op.Ir.operands)
    f;
  consumers

let is_cnm_scan (op : Ir.op) =
  op.Ir.name = "cinm.scan"
  && Ir.attr op "pre_expr" = None
  && match Ir.attr op "target" with Some (Attr.Str "cnm") -> true | _ -> false

let run_on_func (f : Func.t) =
  let counts = use_counts f in
  let consumers = sole_consumers f in
  let uses (v : Ir.value) = Option.value ~default:0 (Hashtbl.find_opt counts v.Ir.vid) in
  (* Build the RPN for a value; [leaves] accumulates non-constant inputs. *)
  let rec rpn_of (leaves : Ir.value list ref) (v : Ir.value) ~is_root : string list =
    match splat_constant v with
    | Some c -> [ "const" ^ string_of_int c ]
    | None -> (
      match v.Ir.def with
      | Ir.Op_result (op, 0) when is_fusable op && (is_root || uses v = 1) ->
        let lhs = rpn_of leaves (Ir.operand op 0) ~is_root:false in
        let rhs = rpn_of leaves (Ir.operand op 1) ~is_root:false in
        lhs @ rhs @ [ opname_of op ]
      | _ ->
        (* leaf input: reuse the index if this value is already a leaf *)
        let rec index i = function
          | [] ->
            leaves := !leaves @ [ v ];
            i
          | (w : Ir.value) :: _ when w.Ir.vid = v.Ir.vid -> i
          | _ :: rest -> index (i + 1) rest
        in
        [ "in" ^ string_of_int (index 0 !leaves) ])
  in
  (* A chain root: a fusable op whose result is NOT consumed by another
     fusable op with a single use of it (i.e. not in the middle of a
     chain), and which actually has something to fuse. *)
  let consumed_by_fusable = Hashtbl.create 64 in
  Func.walk
    (fun op ->
      if is_fusable op then
        Array.iter
          (fun (v : Ir.value) ->
            if uses v = 1 then Hashtbl.replace consumed_by_fusable v.Ir.vid ())
          op.Ir.operands)
    f;
  let rewrite_block (block : Ir.block) =
    Ir.map_ops_in_place
      (fun op ->
          let is_root =
            is_fusable op
            && not (Hashtbl.mem consumed_by_fusable (Ir.result op 0).Ir.vid)
          in
          let worth_fusing =
            is_root
            && Array.exists
                 (fun (v : Ir.value) ->
                   splat_constant v <> None
                   ||
                   match v.Ir.def with
                   | Ir.Op_result (d, 0) -> is_fusable d && uses v = 1
                   | _ -> false)
                 op.Ir.operands
          in
          if not worth_fusing then op
          else begin
            let leaves = ref [] in
            let tokens = rpn_of leaves (Ir.result op 0) ~is_root:true in
            if !leaves = [] then op
              (* every operand folded to a splat literal: a pure-constant
                 expression has no tensor inputs to carry, and ew_expr
                 requires at least one — leave it for the canonicalizer *)
            else
            (* if the chain feeds exactly one cnm scan, fold it into the
               scan (PrIM-style fused predicate + prefix sum) *)
            let scan_consumer =
              match Hashtbl.find_opt consumers (Ir.result op 0).Ir.vid with
              | Some (Some c) when is_cnm_scan c -> Some c
              | _ -> None
            in
            match scan_consumer with
            | Some scan_op ->
              scan_op.Ir.operands <- Array.of_list !leaves;
              Ir.set_attr scan_op "pre_expr" (Attr.Strs tokens);
              op (* root becomes dead; DCE removes it *)
            | None ->
              let fused =
                Ir.create_op ~operands:!leaves
                  ~result_tys:[ (Ir.result op 0).Ir.ty ]
                  ~attrs:
                    (("expr", Attr.Strs tokens)
                    :: (match Ir.attr op "target" with
                       | Some t -> [ ("target", t) ]
                       | None -> []))
                  "cinm.ew_expr"
              in
              (* redirect all uses of the root to the fused op *)
              Ir.replace_uses_in_region f.Func.body ~old_v:(Ir.result op 0)
                ~new_v:(Ir.result fused 0);
              fused
          end)
      block
  in
  Ir.iter_blocks rewrite_block f.Func.body

let pass =
  Pass.create ~name:"cinm-ew-fusion" (fun m ->
      List.iter run_on_func m.Func.funcs;
      List.iter Dce.run_on_func m.Func.funcs)
