(* Loop-invariant code motion, specialized for the CIM flow: hoists pure
   ops (constants, slice extractions) and — crucially — loop-invariant
   memristor.store_tile ops out of scf.for bodies. After the cim
   min-writes interchange puts the weight tile's extract_slice in an outer
   loop, hoisting the store_tile out of the streaming loop is what
   actually removes the redundant crossbar writes (paper §3.2.4/Fig. 10).

   A store_tile is hoistable iff all its operands are defined outside the
   loop and it is the only store to its tile inside the loop (otherwise
   another iteration's reprogramming could be bypassed). Run the pass once
   per loop-nest depth you want hoisting across. *)

open Cinm_ir

let pure_names = [ "tensor.extract_slice"; "tensor.empty"; "tensor.splat"; "tensor.reshape"; "cinm.expand" ]

(* all arith ops are pure; so are the value-semantics tensor shape ops *)
let is_pure (op : Ir.op) = Ir.dialect_of op = "arith" || List.mem op.Ir.name pure_names

let stores_to_tile region tile =
  let count = ref 0 in
  Ir.walk_region
    (fun op ->
      if op.Ir.name = "memristor.store_tile" && Ir.int_attr op "tile" = tile then incr count)
    region;
  !count

let hoistable region inside (op : Ir.op) =
  let invariant =
    Array.for_all (fun (v : Ir.value) -> not (Hashtbl.mem inside v.Ir.vid)) op.Ir.operands
  in
  invariant
  && (is_pure op
     || (op.Ir.name = "memristor.store_tile"
        && stores_to_tile region (Ir.int_attr op "tile") = 1))

let pattern : Rewrite.pattern =
 fun ctx op ->
  match op.Ir.name with
  | "scf.for" ->
    let region = Ir.region op 0 in
    let body = Ir.entry_block region in
    let inside = Transform_util.defined_in_region region in
    let hoisted = ref [] in
    Ir.iter_ops
      (fun body_op ->
        if hoistable region inside body_op then begin
          hoisted := body_op :: !hoisted;
          (* its results become available outside *)
          Array.iter
            (fun (v : Ir.value) -> Hashtbl.remove inside v.Ir.vid)
            body_op.Ir.results
        end)
      body;
    let hoisted = List.rev !hoisted in
    if hoisted = [] then None
    else begin
      let b = ctx.Rewrite.b in
      (* emit hoisted ops before the loop, remapping their operands *)
      List.iter
        (fun (h : Ir.op) ->
          let operands = Rewrite.operands ctx h in
          let result_tys =
            Array.to_list (Array.map (fun (v : Ir.value) -> v.Ir.ty) h.Ir.results)
          in
          let clone = Ir.create_op ~operands ~result_tys ~attrs:h.Ir.attrs h.Ir.name in
          Builder.insert b clone;
          Rewrite.bind_results ctx h (Array.to_list clone.Ir.results))
        hoisted;
      (* rebuild the loop without the hoisted ops; remaining body ops are
         converted recursively (inner loops get their own LICM) *)
      let lb = Rewrite.operand ctx op 0
      and ub = Rewrite.operand ctx op 1
      and step = Rewrite.operand ctx op 2 in
      let inits = List.map (Rewrite.lookup ctx) (Cinm_dialects.Scf_d.for_inits op) in
      let iter_tys = List.map (fun (v : Ir.value) -> v.Ir.ty) inits in
      let new_region = Ir.create_region () in
      let new_block = Ir.create_block ~arg_tys:(Types.Index :: iter_tys) () in
      Ir.add_block new_region new_block;
      Array.iteri (fun i v -> Rewrite.bind ctx v new_block.Ir.args.(i)) body.Ir.args;
      let inner = { ctx with Rewrite.b = Builder.at_end_of new_block } in
      Ir.iter_ops
        (fun body_op ->
          if not (List.memq body_op hoisted) then Rewrite.convert_op inner body_op)
        body;
      let new_for =
        Ir.create_op
          ~operands:([ lb; ub; step ] @ inits)
          ~result_tys:iter_tys
          ~attrs:(List.remove_assoc "unroll" op.Ir.attrs)
          ~regions:[ new_region ] "scf.for"
      in
      Builder.insert b new_for;
      Some (Rewrite.Replace (Array.to_list new_for.Ir.results))
    end
  | _ -> None

let pass = Pass.of_patterns ~name:"licm" [ pattern ]
