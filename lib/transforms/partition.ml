(* Heterogeneous partitioner (the multi-device generalization of
   Target_select, paper §3.2.2/§3.3): instead of picking one device per
   op in isolation, build a dependency-aware device schedule for the
   whole function across UPMEM (cnm), the memristor crossbar (cim), the
   CAM/RTM engines (cim) and the host CPU.

   The scheduler is HEFT-style list scheduling in program order (the
   block is already topologically sorted): for every cinm op it asks the
   cost models for an estimate on each feasible device, adds the
   host-staged transfer cost for operands that live on a *different*
   device, and places the op on the device with the earliest estimated
   finish time. Per-device ready times make load balancing emergent —
   two independent gemms split across the crossbar and the DPU grid
   because the second gemm would otherwise wait for the first device to
   drain.

   The pass annotates each scheduled op with
     - "target"  ("cnm" | "cim" | "host"): what the existing lowerings
       dispatch on — downstream passes are unchanged;
     - "device"  ("cpu" | "upmem" | "memristor" | "cam"): the concrete
       machine, disambiguating the two cim-class engines;
     - "stream"  (int): the device's execution stream id, which the
       async executor maps to per-machine op chains;
     - "xfer_in_bytes" (int): bytes of operands that must be staged from
       another device through the host — the explicit host-side transfer
       edges of the schedule.

   The returned plan is a pure function of the module: byte-identical
   for any job count and interpreter backend (asserted by
   test_partition). *)

open Cinm_ir
open Cinm_dialects

type policy = {
  use_upmem : bool;
  use_memristor : bool;
  use_cam : bool;
  upmem_dpus : int;  (** DPU grid the cnm cost model assumes *)
  cim_rows : int;
  cim_cols : int;
  host_bw : float;  (** bytes/s for host-staged cross-device transfers *)
  host_gops : float;
      (** effective scalar-MAC throughput of the orchestrating host core
          (the in-order ARM of the OCC setup at ~4 cycles per
          multiply-accumulate, not the standalone Xeon baseline): what an
          op costs if kept on the host *)
  max_offload_bytes : int option;  (** capacity guard, as in Target_select *)
}

let default_policy =
  {
    use_upmem = true;
    use_memristor = true;
    use_cam = true;
    upmem_dpus = 2048;
    cim_rows = 64;
    cim_cols = 64;
    (* staging bandwidth calibrated to the upmem simulator's measured
       scatter/gather DMA (~3 GB/s across the DIMM interface) *)
    host_bw = 3e9;
    host_gops = 0.5e9;
    max_offload_bytes = None;
  }

(* Stream ids are fixed per device so schedules are comparable across
   runs; the async executor keys its op chains on the same names. *)
let devices = [| "cpu"; "upmem"; "memristor"; "cam" |]

let stream_of_device d =
  let rec find i = if devices.(i) = d then i else find (i + 1) in
  find 0

let target_of_device = function
  | "cpu" -> "host"
  | "upmem" -> "cnm"
  | "memristor" | "cam" -> "cim"
  | d -> invalid_arg ("Partition: unknown device " ^ d)

type assignment = {
  a_op : string;
  a_oid : int;
  a_device : string;
  a_stream : int;
  a_est_s : float;  (** cost-model estimate on the chosen device *)
  a_xfer_in_bytes : int;  (** operand bytes staged from other devices *)
  a_start_s : float;
  a_finish_s : float;
}

type plan = {
  assignments : assignment list;
  per_device : (string * int) list;  (** ops per device, fixed order *)
  est_makespan_s : float;  (** last estimated finish across devices *)
  est_sequential_s : float;  (** single-stream sum of the same estimates *)
}

let value_bytes (v : Ir.value) =
  match v.Ir.ty with
  | Types.Tensor (shape, dt) | Types.MemRef (shape, dt)
  | Types.Buffer { shape; dtype = dt; _ } ->
    Cinm_support.Util.product_of_shape shape * Types.dtype_bytes dt
  | _ -> 0

let op_footprint_bytes op =
  let total = ref 0 in
  for i = 0 to Ir.num_operands op - 1 do
    total := !total + value_bytes (Ir.operand op i)
  done;
  for i = 0 to Ir.num_results op - 1 do
    total := !total + value_bytes (Ir.result op i)
  done;
  !total

(* CAM-suited ops, per C4CAM's detection criterion (hamming/exact match)
   plus the RTM popcount engine. *)
let cam_suited op =
  match op.Ir.name with
  | "cinm.sim_search" -> (
    match Ir.attr op "metric" with Some (Attr.Str "hamming") -> true | _ -> false)
  | "cinm.pop_count" -> true
  | _ -> false

let matmul_like op = op.Ir.name = "cinm.gemm" || op.Ir.name = "cinm.gemv"

(* Ops the cnm lowering actually claims (cinm_to_cnm's pattern): the
   support table marks what the *paradigm* could run, but scheduling an
   op on upmem is only meaningful when a kernel exists for it. *)
let cnm_lowerable op =
  match op.Ir.name with
  | "cinm.gemm" | "cinm.gemv" | "cinm.reduce" | "cinm.histogram"
  | "cinm.scan" | "cinm.ew_expr" | "cinm.not" | "cinm.add" | "cinm.sub"
  | "cinm.mul" | "cinm.div" | "cinm.min" | "cinm.max" | "cinm.and"
  | "cinm.or" | "cinm.xor" -> true
  | _ -> false

(* The feasible devices of one cinm op, most-preferred-last never matters:
   selection is strictly by earliest finish, ties broken by this fixed
   order. "cpu" is always feasible. *)
let feasible policy op (support : Cinm_d.support) =
  let ds = ref [ "cpu" ] in
  if policy.use_upmem && support.Cinm_d.cnm && cnm_lowerable op then
    ds := "upmem" :: !ds;
  if policy.use_memristor && support.Cinm_d.cim && matmul_like op then
    ds := "memristor" :: !ds;
  if policy.use_cam && cam_suited op then ds := "cam" :: !ds;
  List.rev !ds

let estimate policy device op =
  let model =
    match device with
    | "upmem" ->
      (* per-MAC / per-element costs calibrated to the interpreted-kernel
         simulator (~190 and ~25 DPU cycles measured on mm/va), so load
         balancing reflects what the machines will actually report *)
      Cost_model.cnm_reference ~dpus:policy.upmem_dpus
        ~host_bw:policy.host_bw ~gemm_cycles:190.0 ~ew_cycles:25.0 ()
    | "memristor" ->
      Cost_model.cim_reference ~rows:policy.cim_rows ~cols:policy.cim_cols ()
    | "cam" -> Cost_model.cam_reference ()
    | _ -> Cost_model.host_reference ~gops:policy.host_gops ()
  in
  model.Cost_model.estimate op

(* ----- the list scheduler ----- *)

type sched_state = {
  (* vid -> (estimated ready time, device holding the value) *)
  avail : (int, float * string) Hashtbl.t;
  device_free : (string, float) Hashtbl.t;
  mutable acc : assignment list;
  mutable seq_s : float;
}

let fresh_state () =
  { avail = Hashtbl.create 64; device_free = Hashtbl.create 4; acc = []; seq_s = 0.0 }

let value_avail st (v : Ir.value) =
  match Hashtbl.find_opt st.avail v.Ir.vid with
  | Some pair -> pair
  | None -> (0.0, "cpu") (* func params and constants live on the host *)

(* Staging an operand from [src] onto [dst] goes through the host, so a
   device-to-device move pays both directions. *)
let xfer_cost policy ~src ~dst bytes =
  if src = dst || bytes = 0 then 0.0
  else
    let hops = if src <> "cpu" && dst <> "cpu" then 2.0 else 1.0 in
    hops *. float_of_int bytes /. policy.host_bw

let schedule_op policy st op =
  match Cinm_d.support_of op.Ir.name with
  | None ->
    (* not a cinm compute op: its results become available on the host
       once its operands are (zero-cost orchestration in this model) *)
    let ready = ref 0.0 in
    for i = 0 to Ir.num_operands op - 1 do
      let t, _ = value_avail st (Ir.operand op i) in
      if t > !ready then ready := t
    done;
    for i = 0 to Ir.num_results op - 1 do
      Hashtbl.replace st.avail (Ir.result op i).Ir.vid (!ready, "cpu")
    done
  | Some support ->
    let candidates =
      match policy.max_offload_bytes with
      | Some cap when op_footprint_bytes op > cap -> [ "cpu" ]
      | _ -> feasible policy op support
    in
    let best = ref None in
    List.iter
      (fun dev ->
        match estimate policy dev op with
        | None -> ()
        | Some est ->
          let ready = ref 0.0 and xfer_bytes = ref 0 in
          for i = 0 to Ir.num_operands op - 1 do
            let v = Ir.operand op i in
            let t, src = value_avail st v in
            let bytes = value_bytes v in
            let arrive = t +. xfer_cost policy ~src ~dst:dev bytes in
            if src <> dev && bytes > 0 then xfer_bytes := !xfer_bytes + bytes;
            if arrive > !ready then ready := arrive
          done;
          let free =
            Option.value ~default:0.0 (Hashtbl.find_opt st.device_free dev)
          in
          let start = Float.max !ready free in
          let finish = start +. est in
          let better =
            match !best with
            | None -> true
            | Some (_, _, _, _, f) -> finish < f (* strict: first-listed wins ties *)
          in
          if better then best := Some (dev, est, !xfer_bytes, start, finish))
      candidates;
    let dev, est, xfer_bytes, start, finish =
      match !best with
      | Some b -> b
      | None -> ("cpu", 0.0, 0, 0.0, 0.0) (* no model covers it: free host op *)
    in
    Ir.set_attr op "target" (Attr.Str (target_of_device dev));
    Ir.set_attr op "device" (Attr.Str dev);
    Ir.set_attr op "stream" (Attr.Int (stream_of_device dev));
    if xfer_bytes > 0 then Ir.set_attr op "xfer_in_bytes" (Attr.Int xfer_bytes);
    Hashtbl.replace st.device_free dev finish;
    for i = 0 to Ir.num_results op - 1 do
      Hashtbl.replace st.avail (Ir.result op i).Ir.vid (finish, dev)
    done;
    st.seq_s <-
      st.seq_s +. est +. (float_of_int xfer_bytes /. policy.host_bw);
    st.acc <-
      {
        a_op = op.Ir.name;
        a_oid = op.Ir.oid;
        a_device = dev;
        a_stream = stream_of_device dev;
        a_est_s = est;
        a_xfer_in_bytes = xfer_bytes;
        a_start_s = start;
        a_finish_s = finish;
      }
      :: st.acc

let plan_of_state st =
  let assignments = List.rev st.acc in
  let per_device =
    Array.to_list devices
    |> List.map (fun d ->
           (d, List.length (List.filter (fun a -> a.a_device = d) assignments)))
  in
  let est_makespan_s =
    List.fold_left (fun m a -> Float.max m a.a_finish_s) 0.0 assignments
  in
  { assignments; per_device; est_makespan_s; est_sequential_s = st.seq_s }

(* Human-readable one-liner recorded on the function so later stages
   (serve, reports) can say how the module was split without replanning:
   "cpu=1 upmem=2 memristor=1 est_speedup=1.8x". *)
let plan_summary_string plan =
  let parts =
    List.filter_map
      (fun (d, c) -> if c > 0 then Some (Printf.sprintf "%s=%d" d c) else None)
      plan.per_device
  in
  let speedup =
    if plan.est_makespan_s > 0.0 then
      Printf.sprintf "est_speedup=%.2fx" (plan.est_sequential_s /. plan.est_makespan_s)
    else "est_speedup=1.00x"
  in
  String.concat " " (parts @ [ speedup ])

(* Partition one function: annotate its top-level cinm ops and return the
   schedule. Ops nested in regions stay with their parent. *)
let run_on_func policy (f : Func.t) =
  let st = fresh_state () in
  Ir.iter_ops (schedule_op policy st) (Func.entry_block f);
  let plan = plan_of_state st in
  f.Func.fattrs <-
    ("partition", Attr.Str (plan_summary_string plan))
    :: List.remove_assoc "partition" f.Func.fattrs;
  plan

let plan_func policy (f : Func.t) = run_on_func policy (Func.clone f)

let plan_module policy (m : Func.modul) =
  match m.Func.funcs with
  | [] -> plan_of_state (fresh_state ())
  | f :: _ -> plan_func policy f

let pass ?(policy = default_policy) () =
  Pass.create ~name:"cinm-partition" (fun m ->
      List.iter (fun f -> ignore (run_on_func policy f)) m.Func.funcs)
