(** Heterogeneous multi-device partitioner (paper §3.2.2/§3.3): a
    dependency-aware generalization of {!Target_select} that schedules a
    function's cinm ops across UPMEM, the memristor crossbar, the CAM/RTM
    engines and the host CPU simultaneously, using HEFT-style list
    scheduling over the registered cost models with host-staged transfer
    costs.

    Each scheduled op is annotated with ["target"] (what the existing
    lowerings dispatch on), ["device"] (the concrete machine:
    ["cpu"|"upmem"|"memristor"|"cam"]), ["stream"] (int id of the device's
    execution stream) and, when operands must move, ["xfer_in_bytes"].

    The plan is a pure function of the module: byte-identical at any job
    count and for tree and compiled interpreters. *)

type policy = {
  use_upmem : bool;
  use_memristor : bool;
  use_cam : bool;
  upmem_dpus : int;  (** DPU grid the cnm cost model assumes *)
  cim_rows : int;
  cim_cols : int;
  host_bw : float;  (** bytes/s for host-staged cross-device transfers *)
  host_gops : float;
      (** effective scalar-MAC throughput of the orchestrating host core
          (the in-order ARM of the OCC setup at ~4 cycles per
          multiply-accumulate): what an op costs if kept on the host *)
  max_offload_bytes : int option;  (** capacity guard, as in Target_select *)
}

val default_policy : policy

(** Fixed device order; an op's ["stream"] attr indexes into this. *)
val devices : string array

val stream_of_device : string -> int

(** ["cpu"] -> ["host"], ["upmem"] -> ["cnm"], ["memristor"]/["cam"] ->
    ["cim"]. *)
val target_of_device : string -> string

type assignment = {
  a_op : string;
  a_oid : int;
  a_device : string;
  a_stream : int;
  a_est_s : float;  (** cost-model estimate on the chosen device *)
  a_xfer_in_bytes : int;  (** operand bytes staged from other devices *)
  a_start_s : float;
  a_finish_s : float;
}

type plan = {
  assignments : assignment list;
  per_device : (string * int) list;  (** ops per device, fixed order *)
  est_makespan_s : float;  (** last estimated finish across devices *)
  est_sequential_s : float;  (** single-stream sum of the same estimates *)
}

(** One-line plan summary ("cpu=1 upmem=2 ... est_speedup=1.80x"); also
    recorded on the partitioned function as the ["partition"] fattr. *)
val plan_summary_string : plan -> string

(** Annotate the function's top-level cinm ops in place (and record the
    ["partition"] fattr) and return the schedule. *)
val run_on_func : policy -> Cinm_ir.Func.t -> plan

(** Like {!run_on_func} but on a clone: the input is left unannotated. *)
val plan_func : policy -> Cinm_ir.Func.t -> plan

(** Plan of the module's first function (modules here are single-func). *)
val plan_module : policy -> Cinm_ir.Func.modul -> plan

val pass : ?policy:policy -> unit -> Cinm_ir.Pass.t
