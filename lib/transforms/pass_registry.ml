(* Named pass registry: the single mapping from textual pass names (as
   used by cinm_opt --passes, reproducer headers, and cinm_reduce) to
   pass constructors. Kept in the library so every tool that replays a
   pipeline by name resolves to the same passes. *)

open Cinm_ir

(* A deliberately-failing pass for exercising the crash-reproducer and
   reducer machinery end to end: fails (with a structured, op-prefixed
   diagnostic) iff the module contains a cinm.gemm. Used by tests, the CI
   reduce smoke, and the EXPERIMENTS.md walkthrough; harmless on modules
   without a gemm. *)
let debug_fail_on_gemm =
  Pass.create ~name:"debug-fail-on-gemm" (fun m ->
      List.iter
        (Func.walk (fun op ->
             if op.Ir.name = "cinm.gemm" then
               invalid_arg
                 "cinm.gemm: debug-fail-on-gemm: seeded failure (reproducer/reducer testing)"))
        m.Func.funcs)

let all () : (string * Pass.t) list =
  [
    ("torch-to-tosa", Torch_to_tosa.pass);
    ("tosa-to-linalg", Tosa_to_linalg.pass);
    ("canonicalize", Canonicalize.pass);
    ("linalg-to-cinm", Linalg_to_cinm.pass);
    ("cinm-target-select", Target_select.pass ());
    ("cinm-target-cnm",
     Target_select.pass
       ~policy:{ Target_select.default_policy with forced_target = Some "cnm" } ());
    ("cinm-target-cim",
     Target_select.pass
       ~policy:{ Target_select.default_policy with forced_target = Some "cim" } ());
    ("cinm-ew-fusion", Ew_fusion.pass);
    ("cinm-to-cnm", Cinm_to_cnm.pass ());
    ("cinm-to-scf", Cinm_to_scf.pass);
    ("cinm-to-cim", Cinm_to_cim.pass ());
    ("cinm-to-cam", Cinm_to_cam.pass);
    ("cinm-to-rtm", Cinm_to_rtm.pass ());
    ("cnm-to-upmem", Cnm_to_upmem.pass ());
    ("loop-unroll", Loop_unroll.pass);
    ("cim-assign-tiles", Cim_to_memristor.assign_pass ~tiles:4);
    ("cim-to-memristor", Cim_to_memristor.pass);
    ("licm", Licm.pass);
    ("dce", Dce.pass);
    ("debug-fail-on-gemm", debug_fail_on_gemm);
  ]

let lookup name = List.assoc_opt name (all ())

(* Resolve a comma-joined or already-split pipeline spec to passes,
   reporting the first unknown name instead of resolving partially. *)
let resolve names : (Pass.t list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match lookup name with
      | Some p -> go (p :: acc) rest
      | None -> Error name)
  in
  go [] names

let resolve_spec spec =
  resolve (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""))
