(** Named pass registry: the single mapping from textual pass names (as
    used by [cinm_opt --passes], reproducer headers, and [cinm_reduce]) to
    pass constructors. *)

open Cinm_ir

(** Fails with a structured diagnostic iff the module contains a
    [cinm.gemm]; used to seed failures when exercising the reproducer and
    reducer machinery. Registered as ["debug-fail-on-gemm"]. *)
val debug_fail_on_gemm : Pass.t

val all : unit -> (string * Pass.t) list

val lookup : string -> Pass.t option

(** Resolve a list of pass names; [Error name] carries the first unknown
    name. *)
val resolve : string list -> (Pass.t list, string) result

(** Like {!resolve} for a comma-separated spec; empty segments are
    dropped. *)
val resolve_spec : string -> (Pass.t list, string) result
