(* Target selection at the cinm level (paper §3.2.2): delegate each cinm
   operation to the most suitable device by annotating it with a "target"
   attribute ("cim" | "cnm" | "host"), which the subsequent lowerings
   dispatch on.

   Policy (as in the paper):
   - the user may force a target;
   - otherwise, if cost models are registered (§3.3), pick the cheapest
     device supporting the op;
   - otherwise greedy: matmul-like ops go to the CIM crossbar when the
     tensor dimensions exceed a threshold; every other cinm op goes to
     UPMEM (cnm); ops a paradigm cannot express are reassigned per the
     Table 1 support matrix; non-cinm ops run on the host. *)

open Cinm_ir
open Cinm_dialects

type policy = {
  forced_target : string option;  (** None = automatic *)
  cim_gemm_threshold : int;  (** min(m,k,n) at or above which gemm prefers cim *)
  use_cost_models : bool;
  max_offload_bytes : int option;
      (** ops whose operand+result footprint exceeds this stay on the
          host (device-capacity guard); None = no limit *)
}

let default_policy =
  {
    forced_target = None;
    cim_gemm_threshold = 16;
    use_cost_models = false;
    max_offload_bytes = None;
  }

(* Unknown target names (a typo in --target, a cost model naming a device
   this build doesn't register) mean "no, this device can't take the op" —
   selection then falls back rather than aborting the pipeline. *)
let supports target (support : Cinm_d.support) =
  match target with
  | "cim" -> support.Cinm_d.cim
  | "cnm" -> support.Cinm_d.cnm
  | "host" -> true
  | _ -> false

let fallback_target (support : Cinm_d.support) =
  if support.Cinm_d.cnm then "cnm" else if support.Cinm_d.cim then "cim" else "host"

let greedy_target policy op (support : Cinm_d.support) =
  match op.Ir.name with
  | "cinm.sim_search" when Ir.str_attr op "metric" = "hamming" ->
    (* CAM-suited searches (C4CAM's detection criterion): exact/hamming
       matching maps onto TCAM match lines *)
    "cim"
  | "cinm.gemm" | "cinm.gemv" -> (
    match Types.shape_of (Ir.operand op 0).Ir.ty with
    | Some shape ->
      let min_dim = Array.fold_left min max_int shape in
      if support.Cinm_d.cim && min_dim >= policy.cim_gemm_threshold then "cim" else "cnm"
    | None -> "cnm")
  | _ -> fallback_target support

(* Bytes the device would have to hold to run [op]: all shaped operands
   plus all shaped results. *)
let op_footprint_bytes op =
  let ty_bytes (ty : Types.t) =
    match ty with
    | Types.Tensor (shape, dt) | Types.MemRef (shape, dt)
    | Types.Buffer { shape; dtype = dt; _ } ->
      Cinm_support.Util.product_of_shape shape * Types.dtype_bytes dt
    | _ -> 0
  in
  let total = ref 0 in
  for i = 0 to Ir.num_operands op - 1 do
    total := !total + ty_bytes (Ir.operand op i).Ir.ty
  done;
  for i = 0 to Ir.num_results op - 1 do
    total := !total + ty_bytes (Ir.result op i).Ir.ty
  done;
  !total

let select policy op =
  match Cinm_d.support_of op.Ir.name with
  | None -> None (* not a cinm compute op: host *)
  | Some support ->
    let chosen =
      match policy.forced_target with
      | Some t when supports t support -> t
      | Some _ -> fallback_target support
      | None ->
        if policy.use_cost_models then
          match Cost_model.best_device op with
          | Some d when supports d support -> d
          | _ -> greedy_target policy op support
        else greedy_target policy op support
    in
    Some chosen

let run_on_func policy f =
  Func.walk
    (fun op ->
      match select policy op with
      | Some target -> (
        (* capacity guard: an op too big for any device footprint budget
           degrades to the host lowering instead of failing deep inside a
           device pass; the reason is recorded for diagnostics *)
        match policy.max_offload_bytes with
        | Some cap when target <> "host" && op_footprint_bytes op > cap ->
          Ir.set_attr op "target" (Attr.Str "host");
          Ir.set_attr op "fallback_reason"
            (Attr.Str
               (Printf.sprintf "footprint %d B exceeds device budget %d B"
                  (op_footprint_bytes op) cap))
        | _ -> Ir.set_attr op "target" (Attr.Str target))
      | None -> ())
    f

let pass ?(policy = default_policy) () =
  Pass.create ~name:"cinm-target-select" (fun m ->
      List.iter (run_on_func policy) m.Func.funcs)
