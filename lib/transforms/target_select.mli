(** Target selection at the cinm level (paper §3.2.2): annotates each cinm
    op with a "target" attribute ("cim" | "cnm" | "host") that subsequent
    lowerings dispatch on. Greedy policy by default; registered cost
    models (§3.3) are consulted when enabled. *)

type policy = {
  forced_target : string option;  (** [None] = automatic *)
  cim_gemm_threshold : int;
      (** minimum dimension at which matmul-like ops prefer the crossbar *)
  use_cost_models : bool;
  max_offload_bytes : int option;
      (** device-capacity guard: ops whose operand+result footprint
          exceeds this are demoted to the host target with a
          ["fallback_reason"] attribute; [None] = no limit *)
}

val default_policy : policy

(** The target the policy picks for one op; [None] for non-cinm ops. *)
val select : policy -> Cinm_ir.Ir.op -> string option

val run_on_func : policy -> Cinm_ir.Func.t -> unit
val pass : ?policy:policy -> unit -> Cinm_ir.Pass.t
