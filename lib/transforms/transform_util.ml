(* Shared helpers for transformations that splice region bodies around
   (inlining for loop unrolling, kernel regeneration fallbacks, ...). *)

open Cinm_ir

(* The set of value ids defined inside a region (block args and op
   results, transitively). *)
let defined_in_region (region : Ir.region) =
  let ids = Hashtbl.create 64 in
  let add (v : Ir.value) = Hashtbl.replace ids v.Ir.vid () in
  Ir.iter_blocks
    (fun (block : Ir.block) ->
      Array.iter add block.Ir.args;
      Ir.walk_block (fun op -> Array.iter add op.Ir.results) block)
    region;
  ids

(* Clone the ops of [region]'s entry block at the builder's insertion
   point, substituting the block arguments with [args]; values captured
   from outside the region are passed through [remap] (needed when the
   surrounding function is being rebuilt by a conversion). Returns the
   mapped operands of the terminator (and drops the terminator itself). *)
let inline_body ?(remap = fun (v : Ir.value) -> v) bb (region : Ir.region)
    (args : Ir.value list) : Ir.value list =
  let entry = Ir.entry_block region in
  if Array.length entry.Ir.args <> List.length args then
    invalid_arg "Transform_util.inline_body: arity mismatch";
  let vmap = ref Ir.Vmap.empty in
  (* remap free references first *)
  let inside = defined_in_region region in
  Ir.walk_region
    (fun op ->
      Array.iter
        (fun (v : Ir.value) ->
          if (not (Hashtbl.mem inside v.Ir.vid)) && not (Ir.Vmap.mem v.Ir.vid !vmap)
          then begin
            let w = remap v in
            if w != v then vmap := Ir.Vmap.add v.Ir.vid w !vmap
          end)
        op.Ir.operands)
    region;
  List.iteri
    (fun i v -> vmap := Ir.Vmap.add entry.Ir.args.(i).Ir.vid v !vmap)
    args;
  let terminators = [ "scf.yield"; "cnm.terminator"; "cim.yield"; "func.return" ] in
  let result = ref [] in
  Ir.iter_ops
    (fun (op : Ir.op) ->
      if List.mem op.Ir.name terminators then
        result :=
          Array.to_list op.Ir.operands |> List.map (fun v -> Ir.map_value !vmap v)
      else begin
        let op', vmap' = Ir.clone_op ~vmap:!vmap op in
        vmap := vmap';
        Builder.insert bb op'
      end)
    entry;
  !result

(* Resolve a value to its integer constant if it is defined by an
   arith.constant. *)
let constant_of (v : Ir.value) : int option =
  match v.Ir.def with
  | Ir.Op_result (op, 0) when op.Ir.name = "arith.constant" -> (
    match Ir.attr op "value" with Some (Attr.Int i) -> Some i | _ -> None)
  | _ -> None
