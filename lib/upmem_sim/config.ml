(* UPMEM machine configuration. Defaults model the paper's evaluation
   machine (§4.1): UPMEM DDR4-2400 DIMMs with 128 DPUs each, DPUs at
   350 MHz with 64 MB MRAM and 64 kB WRAM. Pipeline and bandwidth
   parameters follow the PrIM characterization (Gómez-Luna et al. 2022):
   the 14-stage in-order pipeline needs >= 11 resident tasklets to issue
   one instruction per cycle, and MRAM<->WRAM DMA peaks around 700 MB/s
   per DPU with a fixed setup cost per transfer. *)

type t = {
  ranks : int;  (** DIMM ranks; DPUs and host bandwidth scale linearly *)
  dimms : int;
  dpus_per_dimm : int;
  max_tasklets : int;
  freq_hz : float;
  wram_bytes : int;
  mram_bytes : int;
  pipeline_tasklets : int;  (** tasklets needed to saturate the pipeline *)
  (* cycles per 32-bit scalar operation (DPUs have no 32-bit multiplier) *)
  cycles_alu : float;
  cycles_mul : float;
  cycles_div : float;
  cycles_mem : float;  (** WRAM access *)
  (* MRAM <-> WRAM DMA *)
  dma_setup_cycles : float;
  dma_bytes_per_cycle : float;
  (* host <-> MRAM transfers, per DIMM, parallel across DIMMs *)
  host_to_mram_bw : float;  (** bytes/s *)
  mram_to_host_bw : float;
  launch_overhead_s : float;  (** host-side kernel dispatch cost *)
  (* energy model (J) *)
  energy_per_instr : float;
  energy_per_dma_byte : float;
  energy_per_host_byte : float;
}

let default ?(ranks = 1) ?(dimms = 16) ?(tasklets = 16) () =
  ignore tasklets;
  {
    ranks;
    dimms;
    dpus_per_dimm = 128;
    max_tasklets = 24;
    freq_hz = 350e6;
    wram_bytes = 64 * 1024;
    mram_bytes = 64 * 1024 * 1024;
    pipeline_tasklets = 11;
    cycles_alu = 1.0;
    cycles_mul = 10.0;
    cycles_div = 27.0;
    cycles_mem = 1.0;
    dma_setup_cycles = 77.0;
    dma_bytes_per_cycle = 2.0;  (* ~700 MB/s at 350 MHz *)
    host_to_mram_bw = 450e6;
    mram_to_host_bw = 320e6;
    launch_overhead_s = 30e-6;
    energy_per_instr = 25e-12;
    energy_per_dma_byte = 15e-12;
    energy_per_host_byte = 60e-12;
  }

let total_dpus c = c.ranks * c.dimms * c.dpus_per_dimm

(* DPUs of one rank: the granularity of physical-id sharding and fault
   domains (a failed DPU only ever remaps to a spare of its own rank). *)
let rank_dpus c = c.dimms * c.dpus_per_dimm
