(** UPMEM machine configuration. Defaults model the paper's evaluation
    machine (§4.1): DDR4 DIMMs with 128 DPUs each, 350 MHz DPUs with 64 MB
    MRAM and 64 kB WRAM; pipeline and bandwidth parameters follow the PrIM
    characterization. *)

type t = {
  ranks : int;
      (** DIMM ranks (default 1, the paper's machine). Multi-rank scales
          the DPU grid and host transfer parallelism linearly; each rank
          is its own fault domain with its own spare DPUs *)
  dimms : int;
  dpus_per_dimm : int;
  max_tasklets : int;
  freq_hz : float;
  wram_bytes : int;
  mram_bytes : int;
  pipeline_tasklets : int;  (** tasklets needed to saturate the pipeline *)
  cycles_alu : float;
  cycles_mul : float;  (** DPUs have no 32-bit hardware multiplier *)
  cycles_div : float;
  cycles_mem : float;  (** WRAM access *)
  dma_setup_cycles : float;
  dma_bytes_per_cycle : float;
  host_to_mram_bw : float;  (** bytes/s per DIMM, parallel across DIMMs *)
  mram_to_host_bw : float;
  launch_overhead_s : float;
  energy_per_instr : float;
  energy_per_dma_byte : float;
  energy_per_host_byte : float;
}

val default : ?ranks:int -> ?dimms:int -> ?tasklets:int -> unit -> t
val total_dpus : t -> int

(** DPUs of one rank ([dimms * dpus_per_dimm]); the sharding unit of
    physical ids, spares and fault domains. *)
val rank_dpus : t -> int
