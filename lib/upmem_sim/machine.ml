(* UPMEM machine simulator. Provides interpreter hooks for the upmem
   dialect: kernels lowered by the compiler are *executed* per (DPU,
   tasklet) on real data, and their execution profiles drive the timing
   model.

   Timing model (calibrated against the PrIM characterization):
   - DPU pipeline: with T resident tasklets, aggregate issue rate is
     min(1, T/11) instructions/cycle; a tasklet's "instructions" are the
     weighted scalar ops its kernel executed.
   - MRAM<->WRAM DMA: fixed setup cost per transfer plus bytes at
     [dma_bytes_per_cycle]; the DMA engine is serialized per DPU.
   - Host transfers: parallel across active DIMMs.
   - Kernel time of a launch is the max over DPUs (the host waits for the
     slowest DPU), plus a fixed dispatch overhead.

   Fault model (see Cinm_support.Fault): workgroups carry a
   logical->physical DPU map so permanently-failed DPUs can be masked out
   at allocation (the UPMEM SDK's rank-report behavior) and remapped to
   spares when a DPU exhausts its launch retries. Transient launch
   failures happen *before* the kernel touches device memory, so a
   retried launch executes the kernel exactly once per logical DPU and
   numeric results are identical to a fault-free run; only the accounting
   (retries, backoff time, remap restaging) changes. All fault decisions
   are host-side pure functions of (seed, site), so stats stay
   byte-identical for any --jobs count. *)

open Cinm_ir
open Cinm_interp
module Fault = Cinm_support.Fault
module Trace = Cinm_support.Trace
module Schedule = Cinm_support.Schedule
module Vec = Cinm_support.Vec

type wg = {
  wg_shape : int array; (* [dpus; tasklets] *)
  phys : int array; (* logical DPU -> physical DPU (identity when fault-free) *)
  mutable wg_mram : int; (* bytes of MRAM this workgroup allocated per DPU *)
}

type buffer = {
  per_pu : Tensor.t array;  (** one tensor per buffer at its level *)
  dtype : Types.dtype;
  level : int;
}

type entry = Wg of wg | Buf of buffer

(* Execution identity of one (DPU, tasklet) kernel evaluation. Each DPU
   gets its own lane family — its own [wram] table shared by its tasklets
   — so the per-DPU loop bodies touch no machine-global mutable state and
   can run concurrently on OCaml 5 domains (see [Interp.device_state]). *)
type lane = {
  dpu : int;
  tasklet : int;
  wram : (int, Tensor.t) Hashtbl.t;
      (** per-DPU shared WRAM buffers, keyed by the alloc op's oid *)
  wram_used : int ref;  (** bytes allocated in this DPU's WRAM *)
}

type Interp.device_state += Dpu_lane of lane

(* A kernel failure on one lane, surfaced deterministically: the parallel
   launch captures per-DPU outcomes and re-raises the failure of the
   lowest-numbered DPU, independent of domain scheduling. *)
exception Dpu_failed of { dpu : int; launch : int; message : string }

(* Raised when a fault plan has permanently failed more physical DPUs
   than the workgroup can spare, so allocation is impossible even after
   cross-rank spill. Distinct from [Dpu_failed]/[Invalid_argument] so
   the driver can degrade this case (and only this case) to the host. *)
exception Insufficient_capacity of string

let () =
  Printexc.register_printer (function
    | Dpu_failed { dpu; launch; message } ->
      Some (Printf.sprintf "Dpu_failed (DPU %d, launch %d): %s" dpu launch message)
    | Insufficient_capacity msg -> Some ("Insufficient_capacity: " ^ msg)
    | _ -> None)

(* Dispatch attempts per (launch, DPU) before declaring the DPU dead. *)
let max_attempts = 4

type t = {
  config : Config.t;
  stats : Stats.t;
  entries : (int, entry) Hashtbl.t;
  mutable next : int;
  (* shared WRAM allocs evaluated outside any launch (host-driven tests);
     reset per launch like the in-kernel tables *)
  host_wram : (int, Tensor.t) Hashtbl.t;
  mutable host_wram_used : int;
  mutable mram_used_per_dpu : int;  (** bytes of MRAM allocated per DPU *)
  faults : Fault.plan option;
  mutable launch_seq : int;  (** fault-site id of the next launch *)
  mutable scatter_seq : int;  (** fault-site id of the next scatter *)
  spare_cursors : int array;
      (** per rank: next physical DPU to try as a spare — spares never
          cross rank boundaries, so each rank is its own fault domain *)
  masked : (int, unit) Hashtbl.t;
      (** permanently-failed physical DPUs already counted in stats *)
  mutable trace_pid : int;
      (** this machine's trace process id; 0 until tracing first sees it *)
  events : Schedule.ev Vec.t;
      (** one entry per timed device op (scatter/launch/gather), in
          execution order; the async executor slices this log to build
          the overlapped schedule *)
}

let create ?(faults = Fault.default ()) config =
  {
    config;
    stats = Stats.create ();
    entries = Hashtbl.create 32;
    next = 0;
    host_wram = Hashtbl.create 16;
    host_wram_used = 0;
    mram_used_per_dpu = 0;
    faults;
    launch_seq = 0;
    scatter_seq = 0;
    spare_cursors =
      (let rd = Config.rank_dpus config in
       let per_rank = rd + max 2 (rd / 4) in
       Array.init config.Config.ranks (fun r -> (r * per_rank) + per_rank - 1));
    masked = Hashtbl.create 8;
    trace_pid = 0;
    events = Vec.create ();
  }

(* ----- tracing -----

   Every device-clock event below is emitted from the *host* side of the
   simulation (accounting code, fault pre-pass), never from pool worker
   domains, so the device track is bit-identical for any --jobs count.
   The device clock position is the stats total: each accounting bucket
   increment emits exactly one span whose [dur] is the increment, so
   folding span durations in emission order reproduces the stats fields
   bit for bit (Report derives its breakdown from that fold). *)

let tracing m =
  Trace.enabled ()
  && begin
       if m.trace_pid = 0 then
         m.trace_pid <-
           Trace.new_device
             (if m.config.Config.ranks > 1 then
                Printf.sprintf "upmem %d ranks (%d DPUs)" m.config.Config.ranks
                  (Config.total_dpus m.config)
              else
                Printf.sprintf "upmem rank (%d DPUs)" (Config.total_dpus m.config));
       true
     end

let dev_now m = Stats.total_s m.stats

let register m e =
  let id = m.next in
  m.next <- m.next + 1;
  Hashtbl.replace m.entries id e;
  Rtval.Handle id

let find_wg m rv =
  match Hashtbl.find_opt m.entries (Rtval.as_handle rv) with
  | Some (Wg w) -> w
  | _ -> invalid_arg "Upmem machine: expected workgroup handle"

let find_buf m rv =
  match Hashtbl.find_opt m.entries (Rtval.as_handle rv) with
  | Some (Buf b) -> b
  | _ -> invalid_arg "Upmem machine: expected buffer handle"

(* ----- fault plumbing ----- *)

let perm_failed m p =
  match m.faults with
  | None -> false
  | Some plan -> Fault.dpu_failed plan ~dpu:p

let note_masked m p =
  if not (Hashtbl.mem m.masked p) then begin
    Hashtbl.replace m.masked p ();
    m.stats.Stats.failed_dpus <- m.stats.Stats.failed_dpus + 1
  end

(* The rank is over-provisioned: like real DIMMs — whose SDK exposes the
   healthy subset of more physical DPUs than the nominal count — the
   machine has a pool of spare physical DPUs above [total_dpus] that
   masking and remapping draw from. Physical identity only feeds the
   fault hash; the timing model keeps using the workgroup's logical
   shape. *)
(* Physical ids are sharded per rank: rank r owns the id range
   [r * per_rank_phys, (r+1) * per_rank_phys), each rank carrying its own
   spares above its nominal DPUs. Masking, remapping and the fault hash
   all work on these per-rank ranges, so a failure in one rank never
   touches another rank's DPUs or spares. *)
let per_rank_phys m =
  let rd = Config.rank_dpus m.config in
  rd + max 2 (rd / 4)

let phys_total m = m.config.Config.ranks * per_rank_phys m

let rank_of m p = min (m.config.Config.ranks - 1) (p / per_rank_phys m)

(* The physical home of logical DPU [d] on a fault-free machine: identity
   within its rank's shard. Single-rank machines keep the plain identity
   map, bit-identical to the pre-multi-rank model. *)
let home_phys m d =
  let rd = Config.rank_dpus m.config in
  ((d / rd) * per_rank_phys m) + (d mod rd)

(* Assign physical DPUs to a workgroup, skipping permanently-failed ones
   (the SDK masks them out of the rank at allocation). Logical DPUs shard
   contiguously across ranks and prefer their home rank; when a rank's
   shard has too many masked DPUs, allocation spills to the lowest rank
   that still has healthy spares (trading the home rank's DMA locality
   for availability, like the SDK's any-rank allocation). Only a machine
   that is genuinely out of healthy DPUs fails — with
   {!Insufficient_capacity}, which the driver maps to a host fallback.
   Fault-free machines keep the per-rank identity map — and, like before
   this fault layer existed, no physical capacity bound is enforced for
   them. *)
let assign_phys m ~dpus =
  match m.faults with
  | Some plan when plan.Fault.rates.Fault.dpu_fail > 0.0 ->
    let rd = Config.rank_dpus m.config in
    let per_rank = per_rank_phys m in
    let ranks = m.config.Config.ranks in
    let phys = Array.make dpus 0 in
    (* per-rank scan pointer over the rank's physical shard *)
    let ptr = Array.init ranks (fun r -> r * per_rank) in
    (* next healthy physical DPU in rank [r]'s shard, masking failures
       in passing; [None] when the shard is exhausted *)
    let next_in r =
      let hi = (r + 1) * per_rank in
      while ptr.(r) < hi && perm_failed m ptr.(r) do
        note_masked m ptr.(r);
        ptr.(r) <- ptr.(r) + 1
      done;
      if ptr.(r) < hi then Some ptr.(r) else None
    in
    for d = 0 to dpus - 1 do
      let home = min (ranks - 1) (d / rd) in
      let pick =
        match next_in home with
        | Some p -> Some p
        | None ->
          let rec scan r =
            if r >= ranks then None
            else match next_in r with Some p -> Some p | None -> scan (r + 1)
          in
          scan 0
      in
      match pick with
      | Some p ->
        phys.(d) <- p;
        ptr.(p / per_rank) <- p + 1
      | None ->
        raise
          (Insufficient_capacity
             (Printf.sprintf
                "upmem.alloc_dpus: %d DPUs requested but only %d of %d \
                 physical DPUs are healthy"
                dpus d (phys_total m)))
    done;
    phys
  | _ when m.config.Config.ranks > 1 -> Array.init dpus (home_phys m)
  | _ -> Array.init dpus (fun d -> d)

(* A spare physical DPU for remapping, scanning down from the top of the
   failed DPU's own rank so spares don't collide with the low DPUs
   workgroups occupy — and never leave the rank's fault domain. *)
let take_spare m (w : wg) ~rank =
  let lo = rank * per_rank_phys m in
  let in_wg p = Array.exists (fun q -> q = p) w.phys in
  let rec scan p =
    if p < lo then
      invalid_arg
        "upmem.launch: no spare DPUs left to replace a permanently-failed DPU"
    else if perm_failed m p then begin
      note_masked m p;
      scan (p - 1)
    end
    else if in_wg p then scan (p - 1)
    else p
  in
  let s = scan m.spare_cursors.(rank) in
  m.spare_cursors.(rank) <- s - 1;
  s

(* Host-side fault pre-pass of one launch, run sequentially in DPU order
   (=> deterministic for any job count). For each logical DPU, count the
   transient dispatch failures the plan injects; each one costs a capped
   exponential backoff plus a re-dispatch. A DPU that fails all
   [max_attempts] attempts is declared dead: its work is remapped to a
   spare physical DPU and its MRAM re-staged (accounted in [remap_s]).
   All of this happens before the kernel runs, so the kernel still
   executes exactly once per logical DPU. *)
let prepass_faults m (w : wg) ~launch =
  match m.faults with
  | Some plan when plan.Fault.rates.Fault.dpu_transient > 0.0 ->
    let c = m.config in
    let trc = tracing m in
    let t0 = dev_now m in
    let remap0 = m.stats.Stats.remap_s in
    let retry_t = ref 0.0 in
    for d = 0 to w.wg_shape.(0) - 1 do
      let a = ref 0 in
      while
        !a < max_attempts
        && Fault.launch_transient plan ~launch ~dpu:w.phys.(d) ~attempt:!a
      do
        incr a
      done;
      let failed = !a in
      let redispatches = min failed (max_attempts - 1) in
      if redispatches > 0 then begin
        m.stats.Stats.retries <- m.stats.Stats.retries + redispatches;
        (* the fault shows up as an instant on the failing DPU's own lane *)
        if trc then
          Trace.instant ~cat:"fault"
            ~args:
              [ ("launch", Trace.Int launch);
                ("phys_dpu", Trace.Int w.phys.(d));
                ("failed_attempts", Trace.Int failed) ]
            ~clock:Trace.Device ~pid:m.trace_pid
            ~track:(Printf.sprintf "dpu%d" d)
            ~ts:(t0 +. !retry_t) "transient-fault";
        for i = 0 to redispatches - 1 do
          let backoff = min (2.0 ** float_of_int i) 64.0 in
          retry_t :=
            !retry_t +. (c.Config.launch_overhead_s *. (1.0 +. backoff))
        done
      end;
      if failed >= max_attempts then begin
        (* retries exhausted: treat as a permanent failure and remap to a
           spare of the same rank (per-rank fault domains) *)
        let spare = take_spare m w ~rank:(rank_of m w.phys.(d)) in
        let old = w.phys.(d) in
        w.phys.(d) <- spare;
        m.stats.Stats.failed_dpus <- m.stats.Stats.failed_dpus + 1;
        let remap_t =
          (float_of_int w.wg_mram /. c.Config.host_to_mram_bw)
          +. c.Config.launch_overhead_s
        in
        if trc then
          Trace.complete ~cat:"remap"
            ~args:
              [ ("launch", Trace.Int launch);
                ("dead_phys_dpu", Trace.Int old);
                ("spare_phys_dpu", Trace.Int spare);
                ("restaged_bytes", Trace.Int w.wg_mram) ]
            ~clock:Trace.Device ~pid:m.trace_pid
            ~track:(Printf.sprintf "dpu%d" d)
            ~ts:(t0 +. !retry_t +. (m.stats.Stats.remap_s -. remap0))
            ~dur:remap_t "remap";
        m.stats.Stats.remap_s <- m.stats.Stats.remap_s +. remap_t
      end
    done;
    (* one span whose dur is exactly the kernel_s increment: the
       trace-derived kernel bucket stays bit-identical to the stats *)
    if trc && !retry_t > 0.0 then
      Trace.complete ~cat:"kernel"
        ~args:[ ("launch", Trace.Int launch) ]
        ~clock:Trace.Device ~pid:m.trace_pid ~track:"rank" ~ts:t0
        ~dur:!retry_t "retry-backoff";
    m.stats.Stats.kernel_s <- m.stats.Stats.kernel_s +. !retry_t
  | _ -> ()

(* ----- timing ----- *)

let active_dimms m (w : wg) =
  let dpus = w.wg_shape.(0) in
  min
    (m.config.Config.ranks * m.config.Config.dimms)
    (Cinm_support.Util.ceil_div dpus m.config.Config.dpus_per_dimm)

let host_transfer m (w : wg) ~bytes ~to_device =
  let c = m.config in
  let bw = if to_device then c.Config.host_to_mram_bw else c.Config.mram_to_host_bw in
  let dimms = max 1 (active_dimms m w) in
  let t = float_of_int bytes /. (bw *. float_of_int dimms) in
  if tracing m then
    Trace.complete
      ~cat:(if to_device then "cpu->dpu" else "dpu->cpu")
      ~args:[ ("bytes", Trace.Int bytes); ("dimms", Trace.Int dimms) ]
      ~clock:Trace.Device ~pid:m.trace_pid ~track:"xfer" ~ts:(dev_now m) ~dur:t
      (if to_device then "scatter" else "gather");
  if to_device then m.stats.Stats.host_to_device_s <- m.stats.Stats.host_to_device_s +. t
  else m.stats.Stats.device_to_host_s <- m.stats.Stats.device_to_host_s +. t;
  m.stats.Stats.transferred_bytes <- m.stats.Stats.transferred_bytes + bytes;
  m.stats.Stats.energy_j <-
    m.stats.Stats.energy_j +. (float_of_int bytes *. c.Config.energy_per_instr)

(* Weighted instruction count of a tasklet's execution profile. *)
let instr_cycles (c : Config.t) (p : Profile.t) =
  (float_of_int p.Profile.alu_ops *. c.Config.cycles_alu)
  +. (float_of_int p.Profile.mul_ops *. c.Config.cycles_mul)
  +. (float_of_int p.Profile.div_ops *. c.Config.cycles_div)
  +. (float_of_int (p.Profile.loads + p.Profile.stores) *. c.Config.cycles_mem)
  +. (float_of_int p.Profile.barriers *. 100.0)

let dma_cycles (c : Config.t) (p : Profile.t) =
  (float_of_int p.Profile.dma_transfers *. c.Config.dma_setup_cycles)
  +. (float_of_int p.Profile.dma_bytes /. c.Config.dma_bytes_per_cycle)

(* Account a launch: [profiles.(d).(t)] is the profile of tasklet t on
   DPU d. Returns the kernel time. *)
let account_launch m ~launch (profiles : Profile.t array array) =
  let c = m.config in
  let t_count = if Array.length profiles = 0 then 1 else Array.length profiles.(0) in
  let stall_factor =
    max 1.0 (float_of_int c.Config.pipeline_tasklets /. float_of_int (max 1 t_count))
  in
  let trc = tracing m in
  let t0 = dev_now m in
  let max_dpu_cycles = ref 0.0 in
  let total_instr = ref 0.0 in
  let total_dma_bytes = ref 0 in
  Array.iteri
    (fun d dpu_profiles ->
      let compute = ref 0.0 and dma = ref 0.0 in
      Array.iter
        (fun p ->
          compute := !compute +. instr_cycles c p;
          dma := !dma +. dma_cycles c p;
          total_instr := !total_instr +. instr_cycles c p;
          total_dma_bytes := !total_dma_bytes + p.Profile.dma_bytes)
        dpu_profiles;
      let cycles = (!compute *. stall_factor) +. !dma in
      if cycles > !max_dpu_cycles then max_dpu_cycles := cycles;
      (* per-DPU lane spans: the launch as this DPU experienced it —
         compute then its serialized DMA engine. cat "lane"/"lane-dma" is
         excluded from bucket totals; the rank-level "kernel" span below
         carries the accounted time. *)
      if trc then begin
        let track = Printf.sprintf "dpu%d" d in
        let compute_s = !compute *. stall_factor /. c.Config.freq_hz in
        let dma_s = !dma /. c.Config.freq_hz in
        Trace.complete ~cat:"lane"
          ~args:
            [ ("launch", Trace.Int launch);
              ("tasklets", Trace.Int (Array.length dpu_profiles));
              ("compute_cycles", Trace.Float !compute);
              ("stall_factor", Trace.Float stall_factor) ]
          ~clock:Trace.Device ~pid:m.trace_pid ~track ~ts:t0 ~dur:compute_s
          (Printf.sprintf "launch%d:compute" launch);
        if dma_s > 0.0 then
          Trace.complete ~cat:"lane-dma"
            ~args:
              [ ("launch", Trace.Int launch);
                ("dma_cycles", Trace.Float !dma) ]
            ~clock:Trace.Device ~pid:m.trace_pid ~track
            ~ts:(t0 +. compute_s) ~dur:dma_s
            (Printf.sprintf "launch%d:dma" launch)
      end)
    profiles;
  let kernel_t = (!max_dpu_cycles /. c.Config.freq_hz) +. c.Config.launch_overhead_s in
  if trc then
    Trace.complete ~cat:"kernel"
      ~args:
        [ ("launch", Trace.Int launch);
          ("dpus", Trace.Int (Array.length profiles));
          ("max_dpu_cycles", Trace.Float !max_dpu_cycles) ]
      ~clock:Trace.Device ~pid:m.trace_pid ~track:"rank" ~ts:t0 ~dur:kernel_t
      (Printf.sprintf "launch%d" launch);
  m.stats.Stats.kernel_s <- m.stats.Stats.kernel_s +. kernel_t;
  m.stats.Stats.launches <- m.stats.Stats.launches + 1;
  m.stats.Stats.dpu_instructions <-
    m.stats.Stats.dpu_instructions + int_of_float !total_instr;
  m.stats.Stats.dma_bytes <- m.stats.Stats.dma_bytes + !total_dma_bytes;
  m.stats.Stats.energy_j <-
    m.stats.Stats.energy_j
    +. (!total_instr *. c.Config.energy_per_instr)
    +. (float_of_int !total_dma_bytes *. c.Config.energy_per_dma_byte);
  kernel_t

(* DMA data movement between an "MRAM" memref (the PU's buffer) and a WRAM
   scratchpad: copies [count] contiguous elements between the two offsets. *)
let dma_oob ctx op name off count n =
  let where =
    match ctx.Interp.device with
    | Dpu_lane l -> Printf.sprintf " on DPU %d (tasklet %d)" l.dpu l.tasklet
    | _ -> ""
  in
  invalid_arg
    (Printf.sprintf "%s: %s range [%d, %d) out of bounds for %d elements%s"
       op.Ir.name name off (off + count) n where)

let exec_dma ~to_wram ctx op (ops : Rtval.t array) =
  let mram = Rtval.as_tensor ops.(0) in
  let wram = Rtval.as_tensor ops.(1) in
  let mram_off = Rtval.as_int ops.(2) in
  let wram_off = Rtval.as_int ops.(3) in
  let count = Ir.int_attr op "count" in
  let elem_bytes = Types.dtype_bytes mram.Tensor.dtype in
  (let n = Tensor.num_elements mram in
   if mram_off < 0 || count < 0 || mram_off + count > n then
     dma_oob ctx op "MRAM" mram_off count n);
  (let n = Tensor.num_elements wram in
   if wram_off < 0 || count < 0 || wram_off + count > n then
     dma_oob ctx op "WRAM" wram_off count n);
  if to_wram then Tensor.blit mram mram_off wram wram_off count
  else Tensor.blit wram wram_off mram mram_off count;
  let p = ctx.Interp.profile in
  p.Profile.dma_transfers <- p.Profile.dma_transfers + 1;
  p.Profile.dma_bytes <- p.Profile.dma_bytes + (count * elem_bytes)

let hook_impl (m : t) : Interp.hook =
 fun ctx op ops ->
  match op.Ir.name with
  | "upmem.alloc_dpus" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.Workgroup shape ->
      let phys = assign_phys m ~dpus:shape.(0) in
      if tracing m then
        Trace.instant ~cat:"alloc"
          ~args:
            [ ("dpus", Trace.Int shape.(0));
              ("tasklets", Trace.Int shape.(1));
              ("masked_dpus", Trace.Int (Hashtbl.length m.masked)) ]
          ~clock:Trace.Device ~pid:m.trace_pid ~track:"rank" ~ts:(dev_now m)
          "alloc_dpus";
      Some [ register m (Wg { wg_shape = shape; phys; wg_mram = 0 }) ]
    | _ -> invalid_arg "upmem.alloc_dpus: bad result type")
  | "cnm.alloc" | "upmem.alloc" -> (
    let op0 = ops.(0) in
    let w = find_wg m op0 in
    match (Ir.result op 0).Ir.ty with
    | Types.Buffer { shape; dtype; level } ->
      let n = Cinm_dialects.Cnm_d.buffers_at_level w.wg_shape level in
      (* capacity: each DPU hosts its share of this buffer's instances *)
      let dpus = w.wg_shape.(0) in
      let bytes =
        Cinm_support.Util.product_of_shape shape * Types.dtype_bytes dtype
        * Cinm_support.Util.ceil_div n dpus
      in
      w.wg_mram <- w.wg_mram + bytes;
      m.mram_used_per_dpu <- m.mram_used_per_dpu + bytes;
      if m.mram_used_per_dpu > m.config.Config.mram_bytes then
        invalid_arg
          (Printf.sprintf
             "upmem machine: MRAM exhausted (%d B allocated per DPU, %d B available)"
             m.mram_used_per_dpu m.config.Config.mram_bytes);
      let per_pu = Array.init n (fun _ -> Tensor.Arena.alloc shape dtype) in
      if tracing m then
        Trace.instant ~cat:"alloc"
          ~args:
            [ ("bytes_per_dpu", Trace.Int bytes);
              ("level", Trace.Int level);
              ("buffers", Trace.Int n) ]
          ~clock:Trace.Device ~pid:m.trace_pid ~track:"rank" ~ts:(dev_now m)
          "alloc_buffer";
      Some [ register m (Buf { per_pu; dtype; level }) ]
    | _ -> invalid_arg "upmem buffer alloc: bad result type")
  | "upmem.scatter" ->
    let tensor = Rtval.as_tensor (ops.(0)) in
    let buf = find_buf m (ops.(1)) in
    let w = find_wg m (ops.(2)) in
    let halo = match Ir.attr op "halo" with Some (Attr.Int h) -> h | _ -> 0 in
    Distrib.scatter ~halo ~map:(Ir.str_attr op "map") tensor buf.per_pu;
    let scatter = m.scatter_seq in
    m.scatter_seq <- m.scatter_seq + 1;
    (match m.faults with
    | Some plan when plan.Fault.rates.Fault.mram_bitflip > 0.0 ->
      (* MRAM write-path bit flips: corrupt the scattered per-PU data.
         Unlike transients/remaps these DO change device data — they model
         the failure the retry layer cannot hide. *)
      Array.iteri
        (fun pu t ->
          for elem = 0 to Tensor.num_elements t - 1 do
            match Fault.element_bitflip plan ~scatter ~pu ~elem with
            | Some bit ->
              Tensor.set_int t elem (Tensor.get_int t elem lxor (1 lsl bit));
              if tracing m then
                Trace.instant ~cat:"fault"
                  ~args:
                    [ ("scatter", Trace.Int scatter);
                      ("pu", Trace.Int pu);
                      ("elem", Trace.Int elem);
                      ("bit", Trace.Int bit) ]
                  ~clock:Trace.Device ~pid:m.trace_pid ~track:"xfer"
                  ~ts:(dev_now m) "mram-bitflip"
            | None -> ()
          done)
        buf.per_pu
    | _ -> ());
    host_transfer m w
      ~bytes:(Tensor.num_elements tensor * Types.dtype_bytes tensor.Tensor.dtype)
      ~to_device:true;
    Some [ Rtval.Token ]
  | "upmem.gather" -> (
    let buf = find_buf m (ops.(0)) in
    let w = find_wg m (ops.(1)) in
    match Types.shape_of (Ir.result op 0).Ir.ty with
    | Some result_shape ->
      let out = Distrib.gather buf.per_pu ~result_shape ~dtype:buf.dtype in
      host_transfer m w
        ~bytes:(Tensor.num_elements out * Types.dtype_bytes out.Tensor.dtype)
        ~to_device:false;
      Some [ Rtval.Tensor out; Rtval.Token ]
    | None -> invalid_arg "upmem.gather: unshaped result")
  | "upmem.launch" ->
    let w = find_wg m (ops.(0)) in
    let dpus = w.wg_shape.(0) and tasklets = w.wg_shape.(1) in
    let n_buffers = Ir.num_operands op - 1 in
    let bufs = Array.init n_buffers (fun i -> find_buf m (ops.(i + 1))) in
    let region = Ir.region op 0 in
    Hashtbl.reset m.host_wram;
    m.host_wram_used <- 0;
    let launch = m.launch_seq in
    m.launch_seq <- m.launch_seq + 1;
    prepass_faults m w ~launch;
    (* One kernel evaluation per (DPU, tasklet), DPUs in parallel across
       the domain pool — as on hardware, where all DPUs run concurrently.
       Tasklets of one DPU stay sequential (they share the DPU's WRAM).
       Each DPU writes only its pre-allocated profile slots and its own
       buffer instances, and the accounting below runs on the host in DPU
       order, so results and stats are identical for any job count. *)
    let profiles =
      Array.init dpus (fun _ -> Array.init tasklets (fun _ -> Profile.create ()))
    in
    (* Kernel failures are captured per DPU and re-raised in DPU order
       below — never propagated from inside the pool, whose "first
       exception wins" is scheduling-dependent. *)
    let outcomes : string option array = Array.make dpus None in
    let wram_highwater = Array.make dpus 0 in
    let pool = Cinm_support.Pool.default () in
    let parallel = Cinm_support.Pool.jobs pool > 1 && dpus > 1 in
    (* Resolve the kernel once per launch: under the compiled backend this
       compiles (or fetches from cache) a closure tree whose captures are
       already bound, shared read-only by every lane below — each lane then
       executes on its own register file and only needs a small scratch
       environment for hook ops that tree-walk through [Interp.eval_op]. *)
    let prep = Compile.prepare ctx region in
    let compiled = Compile.is_compiled prep in
    Cinm_support.Pool.run pool dpus (fun d ->
        (* Tree backend: per-DPU snapshot of the host bindings — kernels may
           capture values defined outside the launch region, and each
           evaluation also binds the region's own values. Sequential runs
           reuse the host table directly; rebinding is harmless there and
           the copy is pure overhead on every launch. *)
        let env =
          if compiled then Hashtbl.create 16
          else if parallel then Hashtbl.copy ctx.Interp.env
          else ctx.Interp.env
        in
        let wram = Hashtbl.create 16 in
        let wram_used = ref 0 in
        (* launch-scoped allocations ([memref.alloc] inside the kernel and
           this DPU's shared-WRAM buffers) recycle through the arena: they
           cannot escape the launch — kernel results are discarded and
           stores copy elements — so they are released wholesale once the
           DPU's tasklets are done. *)
        let scratch = ref [] in
        (try
           for tid = 0 to tasklets - 1 do
             let pu = (d * tasklets) + tid in
             let args =
               Array.to_list
                 (Array.map
                    (fun b ->
                      let idx =
                        Cinm_dialects.Cnm_d.buffer_index_of_pu w.wg_shape b.level pu
                      in
                      Rtval.Memref b.per_pu.(idx))
                    bufs)
             in
             let inner =
               { ctx with
                 Interp.env;
                 profile = profiles.(d).(tid);
                 device = Dpu_lane { dpu = d; tasklet = tid; wram; wram_used };
                 cmpi_preds = Hashtbl.create 8;
                 (* per-lane watchdog counter: lanes run on parallel
                    domains and must not race on the host's ref *)
                 steps = ref 0;
                 scratch = Some scratch;
               }
             in
             ignore (Compile.run prep inner args)
           done
         with e -> outcomes.(d) <- Some (Printexc.to_string e));
        List.iter Tensor.Arena.release !scratch;
        Hashtbl.iter (fun _ t -> Tensor.Arena.release t) wram;
        wram_highwater.(d) <- !wram_used);
    (* surface the lowest-DPU failure deterministically *)
    (let fail = ref None in
     for d = dpus - 1 downto 0 do
       match outcomes.(d) with
       | Some message -> fail := Some (d, message)
       | None -> ()
     done;
     match !fail with
     | Some (dpu, message) -> raise (Dpu_failed { dpu; launch; message })
     | None -> ());
    Array.iter
      (fun hw ->
        if hw > m.stats.Stats.max_wram_used then m.stats.Stats.max_wram_used <- hw)
      wram_highwater;
    ignore (account_launch m ~launch profiles);
    Some [ Rtval.Token ]
  | "upmem.free_dpus" ->
    (* the workgroup's buffers die with it: release *its* MRAM accounting
       (not the whole machine's — another workgroup may still be alive).
       Unknown or doubly-freed handles are ignored. *)
    (match ops.(0) with
    | Rtval.Handle id -> (
      match Hashtbl.find_opt m.entries id with
      | Some (Wg w) ->
        m.mram_used_per_dpu <- m.mram_used_per_dpu - w.wg_mram;
        if tracing m then
          Trace.instant ~cat:"alloc"
            ~args:[ ("freed_bytes_per_dpu", Trace.Int w.wg_mram) ]
            ~clock:Trace.Device ~pid:m.trace_pid ~track:"rank"
            ~ts:(dev_now m) "free_dpus";
        w.wg_mram <- 0
      | _ -> ())
    | _ -> ());
    Some []
  | "cnm.wait" -> Some []
  | "upmem.tasklet_id" ->
    let tid = match ctx.Interp.device with Dpu_lane l -> l.tasklet | _ -> 0 in
    Some [ Rtval.Int tid ]
  | "upmem.wram_shared_alloc" -> (
    match (Ir.result op 0).Ir.ty with
    | Types.MemRef (shape, dt) ->
      let table, used, where =
        match ctx.Interp.device with
        | Dpu_lane l ->
          (l.wram, l.wram_used, Printf.sprintf " on DPU %d" l.dpu)
        | _ ->
          let r = ref m.host_wram_used in
          (m.host_wram, r, " (host-driven)")
      in
      let t =
        match Hashtbl.find_opt table op.Ir.oid with
        | Some t -> t
        | None ->
          let bytes =
            Cinm_support.Util.product_of_shape shape * Types.dtype_bytes dt
          in
          if !used + bytes > m.config.Config.wram_bytes then
            invalid_arg
              (Printf.sprintf
                 "%s: WRAM exhausted%s: %d B requested on top of %d B in use \
                  (capacity %d B)"
                 op.Ir.name where bytes !used m.config.Config.wram_bytes);
          used := !used + bytes;
          let t =
            match ctx.Interp.device with
            | Dpu_lane _ ->
              (* launch-scoped: the lane loop releases the whole table *)
              Tensor.Arena.alloc shape dt
            | _ ->
              m.host_wram_used <- !used;
              Tensor.zeros shape dt
          in
          Hashtbl.replace table op.Ir.oid t;
          t
      in
      Some [ Rtval.Memref t ]
    | _ -> invalid_arg "upmem.wram_shared_alloc: bad result type")
  | "upmem.mram_read" ->
    exec_dma ~to_wram:true ctx op ops;
    Some []
  | "upmem.mram_write" ->
    exec_dma ~to_wram:false ctx op ops;
    Some []
  | "upmem.barrier_wait" ->
    ctx.Interp.profile.Profile.barriers <- ctx.Interp.profile.Profile.barriers + 1;
    Some []
  | _ -> None

(* The public hook: dispatch to [hook_impl] and log one schedule event per
   timed device op, its duration being exactly the stats-total increment
   of the op (so the event log sums to the stats buckets bit for bit).
   Buffer handles carry the RAW hazards: a launch depends on the scatters
   that filled its buffers, a gather on the launch that produced its
   buffer — which is what lets the schedule merge overlap the transfer
   for chunk n+1 with the kernel of chunk n (double buffering). *)
let hook (m : t) : Interp.hook =
  let impl = hook_impl m in
  fun ctx op ops ->
    match op.Ir.name with
    | "upmem.scatter" | "upmem.gather" | "upmem.launch" ->
      let t0 = Stats.total_s m.stats in
      let r = impl ctx op ops in
      let dur_s = Stats.total_s m.stats -. t0 in
      let push kind chan bufs =
        Vec.push m.events { Schedule.chan; kind; dur_s; bufs; label = op.Ir.name }
      in
      (match op.Ir.name with
      | "upmem.scatter" -> push Schedule.Dma_in "h2d" [ Rtval.as_handle ops.(1) ]
      | "upmem.gather" -> push Schedule.Dma_out "d2h" [ Rtval.as_handle ops.(0) ]
      | _ ->
        push Schedule.Compute "kernel"
          (List.init (Array.length ops - 1) (fun i -> Rtval.as_handle ops.(i + 1))));
      r
    | _ -> impl ctx op ops

(* Return every device buffer's storage to the arena, at the end of a
   run. Callers must guarantee no live value aliases device memory —
   gathers copy out, so host results never do. *)
let recycle m =
  Hashtbl.iter
    (fun _ e ->
      match e with Buf b -> Array.iter Tensor.Arena.release b.per_pu | Wg _ -> ())
    m.entries;
  Hashtbl.reset m.entries;
  Hashtbl.iter (fun _ t -> Tensor.Arena.release t) m.host_wram;
  Hashtbl.reset m.host_wram

(* Run a host function on this machine; returns results and stats. *)
let run m (f : Func.t) args =
  let results, _profile = Compile.run_func ~hooks:[ hook m ] f args in
  (results, m.stats)
