(** UPMEM machine simulator: interpreter hooks for the upmem dialect.
    Kernels are executed per (DPU, tasklet) on real data; the timing model
    (PrIM-calibrated) converts the execution profiles to time:

    - pipeline: with T resident tasklets the aggregate issue rate is
      min(1, T/11) instructions per cycle;
    - MRAM<->WRAM DMA: fixed setup cost per transfer plus a per-byte cost,
      serialized per DPU;
    - host transfers: parallel across active DIMMs;
    - a launch costs the slowest DPU plus a fixed dispatch overhead. *)

open Cinm_ir
open Cinm_interp

(** Execution identity of one (DPU, tasklet) kernel evaluation, installed
    as the {!Interp.device_state} of the kernel's context. Each DPU owns a
    [wram] table shared by its tasklets, so per-DPU execution touches no
    machine-global mutable state and DPUs run concurrently on the
    {!Cinm_support.Pool} domains — with results and stats byte-identical
    to a sequential run for any job count. *)
type lane = {
  dpu : int;
  tasklet : int;
  wram : (int, Tensor.t) Hashtbl.t;
      (** per-DPU shared WRAM buffers, keyed by the alloc op's oid *)
}

type Interp.device_state += Dpu_lane of lane

type t = {
  config : Config.t;
  stats : Stats.t;
  entries : (int, entry) Hashtbl.t;
  mutable next : int;
  host_wram : (int, Tensor.t) Hashtbl.t;
      (** shared WRAM allocs evaluated outside any launch, reset per launch *)
  mutable mram_used_per_dpu : int;  (** bytes of MRAM allocated per DPU *)
}

and entry

val create : Config.t -> t

(** The interpreter hook implementing upmem.* (and the cnm.alloc/cnm.wait
    ops that survive lowering). *)
val hook : t -> Interp.hook

(** Run a lowered host function on this machine. *)
val run : t -> Func.t -> Rtval.t list -> Rtval.t list * Stats.t
