(** UPMEM machine simulator: interpreter hooks for the upmem dialect.
    Kernels are executed per (DPU, tasklet) on real data; the timing model
    (PrIM-calibrated) converts the execution profiles to time:

    - pipeline: with T resident tasklets the aggregate issue rate is
      min(1, T/11) instructions per cycle;
    - MRAM<->WRAM DMA: fixed setup cost per transfer plus a per-byte cost,
      serialized per DPU;
    - host transfers: parallel across active DIMMs;
    - a launch costs the slowest DPU plus a fixed dispatch overhead.

    With a {!Cinm_support.Fault} plan installed the machine is
    fault-tolerant: permanently-failed DPUs are masked out of workgroups
    at allocation, transient launch failures are retried with capped
    exponential backoff in simulated time, and a DPU that exhausts its
    retries has its work remapped to a spare — all before the kernel
    runs, so numeric results equal the fault-free run and only
    {!Stats.t.retries} / {!Stats.t.failed_dpus} / {!Stats.t.remap_s}
    change. Fault decisions are pure functions of the plan's seed, making
    them byte-identical for any job count. *)

open Cinm_ir
open Cinm_interp

(** Execution identity of one (DPU, tasklet) kernel evaluation, installed
    as the {!Interp.device_state} of the kernel's context. Each DPU owns a
    [wram] table shared by its tasklets, so per-DPU execution touches no
    machine-global mutable state and DPUs run concurrently on the
    {!Cinm_support.Pool} domains — with results and stats byte-identical
    to a sequential run for any job count. *)
type lane = {
  dpu : int;
  tasklet : int;
  wram : (int, Tensor.t) Hashtbl.t;
      (** per-DPU shared WRAM buffers, keyed by the alloc op's oid *)
  wram_used : int ref;  (** bytes allocated in this DPU's 64 kB WRAM *)
}

type Interp.device_state += Dpu_lane of lane

(** A kernel failure on one lane. The launch captures per-DPU outcomes and
    re-raises the lowest-numbered DPU's failure, independent of how the
    domain pool scheduled the DPUs. *)
exception Dpu_failed of { dpu : int; launch : int; message : string }

(** Raised by DPU allocation when a fault plan has permanently failed so
    many physical DPUs that the request cannot be satisfied even after
    spilling across ranks. The driver degrades exactly this failure to
    host execution. *)
exception Insufficient_capacity of string

type t = {
  config : Config.t;
  stats : Stats.t;
  entries : (int, entry) Hashtbl.t;
  mutable next : int;
  host_wram : (int, Tensor.t) Hashtbl.t;
      (** shared WRAM allocs evaluated outside any launch, reset per launch *)
  mutable host_wram_used : int;
  mutable mram_used_per_dpu : int;  (** bytes of MRAM allocated per DPU *)
  faults : Cinm_support.Fault.plan option;
  mutable launch_seq : int;
  mutable scatter_seq : int;
  spare_cursors : int array;
      (** per rank: spares are taken from the failed DPU's own rank, so
          each rank is an independent fault domain *)
  masked : (int, unit) Hashtbl.t;
  mutable trace_pid : int;
      (** the machine's {!Cinm_support.Trace} device pid; [0] until the
          first event is emitted with tracing on. With tracing live the
          machine emits its timing as device-clock spans — scatter/gather
          on the ["xfer"] track, per-launch kernel and retry-backoff spans
          on ["rank"], per-DPU compute/DMA lane spans on ["dpu<i>"], and
          fault instants (transient failures, remaps, MRAM bit flips) on
          the lane they hit. Span durations equal the stats-bucket
          increments, added in the same order, so
          {!Cinm_support.Trace.device_total} reproduces the stats fields
          bit for bit. All events are emitted host-side, never from pool
          domains: the device track is identical for any [--jobs]. *)
  events : Cinm_support.Schedule.ev Cinm_support.Vec.t;
      (** schedule-event log: one entry per timed device op (scatter /
          launch / gather) whose duration equals that op's stats-total
          increment; sliced by the async executor to build overlapped
          schedules *)
}

and entry

val create : ?faults:Cinm_support.Fault.plan option -> Config.t -> t
(** [faults] defaults to {!Cinm_support.Fault.default} (the [CINM_FAULTS]
    plan, if any); pass [~faults:None] to force a fault-free machine. *)

(** The interpreter hook implementing upmem.* (and the cnm.alloc/cnm.wait
    ops that survive lowering). *)
val hook : t -> Interp.hook

(** Return every device buffer's storage to the {!Tensor.Arena}, for the
    end of a run. Callers must guarantee no live value aliases device
    memory — gathers copy out, so host results never do. *)
val recycle : t -> unit

(** Run a lowered host function on this machine. *)
val run : t -> Func.t -> Rtval.t list -> Rtval.t list * Stats.t
