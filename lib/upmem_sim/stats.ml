(* Simulation statistics for one UPMEM run: time is split into the buckets
   the PrIM methodology reports (CPU->DPU transfer, kernel, DPU->CPU). *)

type t = {
  mutable host_to_device_s : float;
  mutable kernel_s : float;
  mutable device_to_host_s : float;
  mutable launches : int;
  mutable dpu_instructions : int;
  mutable dma_bytes : int;
  mutable transferred_bytes : int;
  mutable energy_j : float;
  mutable max_wram_used : int;
  mutable retries : int;
  mutable failed_dpus : int;
  mutable remap_s : float;
}

let create () =
  {
    host_to_device_s = 0.0;
    kernel_s = 0.0;
    device_to_host_s = 0.0;
    launches = 0;
    dpu_instructions = 0;
    dma_bytes = 0;
    transferred_bytes = 0;
    energy_j = 0.0;
    max_wram_used = 0;
    retries = 0;
    failed_dpus = 0;
    remap_s = 0.0;
  }

let total_s s = s.host_to_device_s +. s.kernel_s +. s.device_to_host_s +. s.remap_s

(* Bit-exact equality, floats included: the parallel simulator merges
   per-DPU profiles in DPU order on the host, so its accounting must be
   byte-identical to a sequential run — not merely approximately equal. *)
let equal a b =
  a.host_to_device_s = b.host_to_device_s
  && a.kernel_s = b.kernel_s
  && a.device_to_host_s = b.device_to_host_s
  && a.launches = b.launches
  && a.dpu_instructions = b.dpu_instructions
  && a.dma_bytes = b.dma_bytes
  && a.transferred_bytes = b.transferred_bytes
  && a.energy_j = b.energy_j
  && a.max_wram_used = b.max_wram_used
  && a.retries = b.retries
  && a.failed_dpus = b.failed_dpus
  && a.remap_s = b.remap_s

let to_string s =
  let faults =
    if s.retries = 0 && s.failed_dpus = 0 then ""
    else
      Printf.sprintf " retries=%d failed_dpus=%d remap=%.3fms" s.retries
        s.failed_dpus (1e3 *. s.remap_s)
  in
  Printf.sprintf
    "total=%.3fms (to_dev=%.3f kernel=%.3f to_host=%.3f) launches=%d instrs=%d dma=%dB xfer=%dB energy=%.3fmJ%s"
    (1e3 *. total_s s) (1e3 *. s.host_to_device_s) (1e3 *. s.kernel_s)
    (1e3 *. s.device_to_host_s) s.launches s.dpu_instructions s.dma_bytes
    s.transferred_bytes (1e3 *. s.energy_j) faults
