(** Simulation statistics for one UPMEM run; time is split into the buckets
    the PrIM methodology reports. *)

type t = {
  mutable host_to_device_s : float;
  mutable kernel_s : float;
  mutable device_to_host_s : float;
  mutable launches : int;
  mutable dpu_instructions : int;
  mutable dma_bytes : int;
  mutable transferred_bytes : int;
  mutable energy_j : float;
  mutable max_wram_used : int;
  mutable retries : int;  (** transient launch failures that were re-dispatched *)
  mutable failed_dpus : int;  (** DPUs masked at alloc or remapped at launch *)
  mutable remap_s : float;  (** simulated time spent re-staging remapped DPUs *)
}

val create : unit -> t
val total_s : t -> float

(** Bit-exact equality, floats included: parallel simulation must account
    byte-identically to a sequential run. *)
val equal : t -> t -> bool

val to_string : t -> string
