// fuzz-seed: 0
// found: tree interpreter crashed on float tensor.splat (Rtval.as_int on a float scalar)
module {
  func.func @main(%arg0: tensor<2x2xf64>) -> (tensor<2x5xf64>, f64) {
    %0 = "cinm.scan"(%arg0) {op = "max"} : (tensor<2x2xf64>) -> (tensor<2x2xf64>)
    %1 = "tensor.pad"(%0) {high = [0, 1], low = [2, 0]} : (tensor<2x2xf64>) -> (tensor<4x3xf64>)
    %2 = "tensor.extract_slice"(%arg0) {offsets = [0, 0], sizes = [2, 2]} : (tensor<2x2xf64>) -> (tensor<2x2xf64>)
    %3 = "arith.constant"() {value = -2.0} : () -> (f64)
    %4 = "tensor.splat"(%3) : (f64) -> (tensor<2x1xf64>)
    %5 = "linalg.matmul"(%0, %4) : (tensor<2x2xf64>, tensor<2x1xf64>) -> (tensor<2x1xf64>)
    %6 = "arith.constant"() {value = -0.0} : () -> (f64)
    %7 = "tensor.splat"(%6) : (f64) -> (tensor<2x5xf64>)
    %8 = "linalg.matmul"(%arg0, %7) : (tensor<2x2xf64>, tensor<2x5xf64>) -> (tensor<2x5xf64>)
    %9 = "cinm.reduce"(%7) {op = "add"} : (tensor<2x5xf64>) -> (f64)
    %10 = "cinm.reduce"(%5) {op = "add"} : (tensor<2x1xf64>) -> (f64)
    %11 = "cinm.reduce"(%4) {op = "add"} : (tensor<2x1xf64>) -> (f64)
    %12 = "cinm.reduce"(%2) {op = "add"} : (tensor<2x2xf64>) -> (f64)
    %13 = "cinm.reduce"(%1) {op = "add"} : (tensor<4x3xf64>) -> (f64)
    %14 = "cinm.reduce"(%0) {op = "add"} : (tensor<2x2xf64>) -> (f64)
    %15 = "cinm.reduce"(%arg0) {op = "add"} : (tensor<2x2xf64>) -> (f64)
    %16 = "arith.addf"(%9, %10) : (f64, f64) -> (f64)
    %17 = "arith.addf"(%16, %11) : (f64, f64) -> (f64)
    %18 = "arith.addf"(%17, %12) : (f64, f64) -> (f64)
    %19 = "arith.addf"(%18, %13) : (f64, f64) -> (f64)
    %20 = "arith.addf"(%19, %14) : (f64, f64) -> (f64)
    %21 = "arith.addf"(%20, %15) : (f64, f64) -> (f64)
    "func.return"(%8, %21) : (tensor<2x5xf64>, f64) -> ()
  }
}