// fuzz-seed: 3
// found: reference cinm.scan truncated f64 elements to ints (upmem value divergence)
module {
  func.func @main(%arg0: tensor<3x4xf64>, %arg1: tensor<2xf64>) -> (tensor<3x4xf64>, f64) {
    %0 = "arith.constant"() {value = -2.0} : () -> (f64)
    %1 = "tensor.splat"(%0) : (f64) -> (tensor<2x1xf64>)
    %2 = "tensor.insert_slice"(%1, %arg0) {offsets = [1, 1]} : (tensor<2x1xf64>, tensor<3x4xf64>) -> (tensor<3x4xf64>)
    %3 = "arith.constant"() {value = 0.125} : () -> (f64)
    %4 = "tensor.splat"(%3) : (f64) -> (tensor<3x4xf64>)
    %5 = "arith.constant"() {value = 0} : () -> (index)
    %6 = "arith.constant"() {value = 4} : () -> (index)
    %7 = "arith.constant"() {value = 1} : () -> (index)
    %8 = "scf.for"(%5, %6, %7, %arg0) ({
    ^bb0(%9: index, %10: tensor<3x4xf64>):
      %11 = "cinm.mul"(%10, %4) : (tensor<3x4xf64>, tensor<3x4xf64>) -> (tensor<3x4xf64>)
      "scf.yield"(%11) : (tensor<3x4xf64>) -> ()
    }) : (index, index, index, tensor<3x4xf64>) -> (tensor<3x4xf64>)
    %12 = "cinm.scan"(%8) {op = "add"} : (tensor<3x4xf64>) -> (tensor<3x4xf64>)
    %13 = "linalg.mul"(%12, %8) : (tensor<3x4xf64>, tensor<3x4xf64>) -> (tensor<3x4xf64>)
    %14 = "cinm.reduce"(%12) {op = "add"} : (tensor<3x4xf64>) -> (f64)
    %15 = "cinm.reduce"(%8) {op = "add"} : (tensor<3x4xf64>) -> (f64)
    %16 = "cinm.reduce"(%4) {op = "add"} : (tensor<3x4xf64>) -> (f64)
    %17 = "cinm.reduce"(%2) {op = "add"} : (tensor<3x4xf64>) -> (f64)
    %18 = "cinm.reduce"(%1) {op = "add"} : (tensor<2x1xf64>) -> (f64)
    %19 = "cinm.reduce"(%arg0) {op = "add"} : (tensor<3x4xf64>) -> (f64)
    %20 = "cinm.reduce"(%arg1) {op = "add"} : (tensor<2xf64>) -> (f64)
    %21 = "arith.addf"(%14, %15) : (f64, f64) -> (f64)
    %22 = "arith.addf"(%21, %16) : (f64, f64) -> (f64)
    %23 = "arith.addf"(%22, %17) : (f64, f64) -> (f64)
    %24 = "arith.addf"(%23, %18) : (f64, f64) -> (f64)
    %25 = "arith.addf"(%24, %19) : (f64, f64) -> (f64)
    %26 = "arith.addf"(%25, %20) : (f64, f64) -> (f64)
    "func.return"(%13, %26) : (tensor<3x4xf64>, f64) -> ()
  }
}