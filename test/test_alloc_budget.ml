(* Allocation-budget smoke test: the compiled backend's scalar hot path
   (scf.for driving memref load / arith / store on the int frame) must not
   allocate per iteration. A regression back to per-element Rtval boxing
   costs >= 3 minor words per iteration and trips the budget below. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp
module T = Types

let () = Registry.ensure_all ()

let iters = 200_000

(* sum over a counted loop doing load / addi / store on one i32 cell *)
let build () =
  let f = Func.create ~name:"hot" ~arg_tys:[] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func f in
  let m = Memref_d.alloc b [| 1 |] T.I32 in
  let i0 = Arith.const_index b 0 in
  Memref_d.store b (Arith.constant b 0) m [ i0 ];
  let c0 = Arith.const_index b 0
  and c1 = Arith.const_index b 1
  and cn = Arith.const_index b iters in
  let c3 = Arith.constant b 3 in
  Scf_d.for0 b ~lb:c0 ~ub:cn ~step:c1 (fun bb i ->
      ignore i;
      let v = Memref_d.load bb m [ i0 ] in
      Memref_d.store bb (Arith.addi bb v c3) m [ i0 ]);
  Func_d.return b [ Memref_d.load b m [ i0 ] ];
  f

let with_backend backend f =
  let prev = Compile.backend () in
  Compile.set_backend backend;
  Fun.protect ~finally:(fun () -> Compile.set_backend prev) f

let test_compiled_loop_alloc_budget () =
  with_backend Compile.Compiled (fun () ->
      let f = build () in
      let run () =
        match Compile.run_func f [] with
        | [ v ], _ -> Rtval.as_int v
        | _ -> Alcotest.fail "expected one result"
      in
      (* first run compiles the unit and warms caches *)
      let expect = iters * 3 in
      Alcotest.(check int) "loop result" expect (run ());
      let before = Gc.minor_words () in
      Alcotest.(check int) "loop result (measured run)" expect (run ());
      let delta = Gc.minor_words () -. before in
      (* generous: < 1 word per iteration on average. The loop body itself
         allocates nothing; the budget absorbs the per-run constant
         (register file, profile, result list). *)
      let budget = float_of_int iters in
      if delta > budget then
        Alcotest.failf
          "compiled hot loop allocated %.0f minor words over %d iterations \
           (budget %.0f) — per-element boxing is back"
          delta iters budget)

let () =
  Alcotest.run "alloc_budget"
    [
      ( "compiled",
        [
          Alcotest.test_case "hot loop stays unboxed" `Quick
            test_compiled_loop_alloc_budget;
        ] );
    ]
