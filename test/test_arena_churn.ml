(* Tensor.Arena under concurrent churn: many domains allocating and
   releasing mixed sizes at once — including whole fault-injected
   benchmark executions, whose retry/remap paths also go through the
   arena — while the per-key cap holds and results stay bit-identical. *)

module Pool = Cinm_support.Pool
module Fault = Cinm_support.Fault
module Config = Cinm_support.Config
module Tensor = Cinm_interp.Tensor
module Driver = Cinm_core.Driver
module Backend = Cinm_core.Backend
module Benchmark = Cinm_benchmarks.Benchmark

let () = Cinm_dialects.Registry.ensure_all ()

let check_cap name =
  let s = Tensor.Arena.stats () in
  let cap = Tensor.Arena.max_per_key () in
  if s.Tensor.Arena.largest_pool > cap then
    Alcotest.fail
      (Printf.sprintf "%s: pool of %d exceeds the per-key cap %d" name
         s.Tensor.Arena.largest_pool cap)

(* Raw churn: 4 domains x 400 alloc/release cycles over a handful of
   (shape, dtype) classes, deliberately colliding on the same keys. *)
let test_raw_churn () =
  Tensor.Arena.clear ();
  let shapes = [| [| 64 |]; [| 8; 8 |]; [| 256 |]; [| 3; 5 |]; [| 1024 |] |] in
  let pool = Pool.create ~jobs:4 () in
  Pool.run pool 16 (fun w ->
      let held = ref [] in
      for i = 0 to 399 do
        let t =
          Tensor.Arena.alloc shapes.((w + i) mod Array.length shapes)
            Cinm_ir.Types.F32
        in
        held := t :: !held;
        (* release in bursts so free lists actually fill *)
        if i mod 7 = 6 then begin
          List.iter Tensor.Arena.release !held;
          held := []
        end
      done;
      List.iter Tensor.Arena.release !held);
  Pool.shutdown pool;
  check_cap "raw churn";
  (* recycled storage is zero-filled: a fresh alloc reads as zeros *)
  let t = Tensor.Arena.alloc [| 64 |] Cinm_ir.Types.F32 in
  let sum = ref 0.0 in
  for i = 0 to 63 do
    sum := !sum +. abs_float (Tensor.get_float t i)
  done;
  Alcotest.(check (float 0.0)) "recycled storage is zeroed" 0.0 !sum

let run_with_faults bench plan =
  let b =
    Cinm_benchmarks.Suites.find bench (Cinm_benchmarks.Suites.prim_suite ())
  in
  let backend =
    Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ())
  in
  let config = { (Config.default ()) with Config.faults = Some plan } in
  let compiled = Driver.compile_func ~config backend (b.Benchmark.build ()) in
  let results, report = Driver.run ~config compiled (b.Benchmark.inputs ()) in
  (b, results, report)

(* Fault-injected executions churning the arena concurrently from
   several submitted tasks: every run must still match the host
   reference, and repeated runs under the same plan must be
   bit-identical (same retries, same remaps, same modelled time). *)
let test_faulted_churn () =
  Tensor.Arena.clear ();
  let plan =
    match Fault.parse "dpu_fail=0.3,seed=7" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let baseline = ref None in
  let mismatches = Atomic.make 0 in
  let pool = Pool.create ~jobs:3 () in
  let b0, r0, rep0 = run_with_faults "va" plan in
  Alcotest.(check bool) "baseline matches reference" true
    (Benchmark.results_match b0 r0);
  baseline := Some (r0, rep0);
  for _ = 1 to 6 do
    let accepted =
      Pool.submit pool (fun () ->
          let b, r, rep = run_with_faults "va" plan in
          let r0, rep0 = Option.get !baseline in
          if
            not
              (Benchmark.results_match b r
              && r = r0
              && rep.Cinm_core.Report.total_s = rep0.Cinm_core.Report.total_s)
          then Atomic.incr mismatches)
    in
    Alcotest.(check bool) "task accepted" true accepted
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "bit-identical under churn" 0 (Atomic.get mismatches);
  check_cap "faulted churn"

let () =
  Alcotest.run "arena-churn"
    [
      ( "arena",
        [
          Alcotest.test_case "raw churn" `Quick test_raw_churn;
          Alcotest.test_case "faulted churn" `Quick test_faulted_churn;
        ] );
    ]
