(* Differential tests for the closure-compiling executor: every scenario —
   fig10-style CIM matmuls, fig11-style UPMEM kernels, fault injection,
   hand-built scf control flow, runtime errors, and the bench --json
   output — must be bit-identical between CINM_INTERP=tree and
   CINM_INTERP=compiled, at --jobs 1 and --jobs 4. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types
module Usim = Cinm_upmem_sim
module Pool = Cinm_support.Pool
module Fault = Cinm_support.Fault
module Driver = Cinm_core.Driver
module Backend = Cinm_core.Backend
module Report = Cinm_core.Report

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)
let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let with_backend backend f =
  let prev = Compile.backend () in
  Compile.set_backend backend;
  Fun.protect ~finally:(fun () -> Compile.set_backend prev) f

(* Run the same scenario under both backends and hand both outcomes to
   [check]. The scenario must build its IR fresh on every call (pipelines
   mutate funcs in place). *)
let differential run check =
  let tree = with_backend Compile.Tree run in
  let compiled = with_backend Compile.Compiled run in
  check tree compiled

let check_tensors msg a b =
  List.iter2
    (fun x y ->
      if not (Tensor.equal x y) then
        Alcotest.failf "%s: tensors differ: %s vs %s" msg (Tensor.to_string x)
          (Tensor.to_string y))
    a b

(* ----- UPMEM lowering (fig11-style kernels) ----- *)

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let lower_to_upmem ~cnm_opts f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass () ]
    m;
  List.hd m.Func.funcs

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let run_upmem ?(jobs = 1) ?(faults = None) ~cnm_opts builder args =
  Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs 1)
    (fun () ->
      let machine = Usim.Machine.create ~faults (Usim.Config.default ~dimms:1 ()) in
      let f = lower_to_upmem ~cnm_opts (builder ()) in
      let results, profile =
        Compile.run_func ~hooks:[ Usim.Machine.hook machine ] f args
      in
      (List.map Rtval.as_tensor results, machine.Usim.Machine.stats, profile))

let check_upmem_equal (r1, s1, p1) (r2, s2, p2) =
  check_tensors "tree vs compiled" r1 r2;
  Alcotest.(check bool)
    (Printf.sprintf "stats identical:\n%s\nvs\n%s" (Usim.Stats.to_string s1)
       (Usim.Stats.to_string s2))
    true (Usim.Stats.equal s1 s2);
  Alcotest.(check bool) "host profiles identical" true (Profile.equal p1 p2)

let gemm_opts =
  { Cinm_to_cnm.dpus = 8; tasklets = 4; optimize = false; max_rows_per_launch = 8 }

let test_upmem_gemm () =
  let a = iota [| 32; 8 |] and b = iota [| 8; 6 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor b ] in
  List.iter
    (fun jobs ->
      differential
        (fun () -> run_upmem ~jobs ~cnm_opts:gemm_opts (build_mm 32 8 6) args)
        check_upmem_equal)
    [ 1; 4 ]

let test_upmem_gemm_wram_opt () =
  (* WRAM-optimized kernels exercise the hook ops (wram_shared_alloc,
     mram_read/write, barrier_wait) through the generic-fallback path *)
  let a = iota [| 32; 16 |] and b = iota [| 16; 8 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor b ] in
  let opts =
    { Cinm_to_cnm.dpus = 4; tasklets = 4; optimize = true; max_rows_per_launch = 8 }
  in
  List.iter
    (fun jobs ->
      differential
        (fun () -> run_upmem ~jobs ~cnm_opts:opts (build_mm 32 16 8) args)
        check_upmem_equal)
    [ 1; 4 ]

(* ----- fault scenarios ----- *)

let plan rates = Fault.make ~seed:42 rates

let test_faults_differential () =
  let a = iota [| 32; 8 |] and b = iota [| 8; 6 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor b ] in
  List.iter
    (fun rates ->
      List.iter
        (fun jobs ->
          differential
            (fun () ->
              run_upmem ~jobs ~faults:(Some (plan rates)) ~cnm_opts:gemm_opts
                (build_mm 32 8 6) args)
            check_upmem_equal)
        [ 1; 4 ])
    [
      { Fault.no_rates with Fault.dpu_transient = 0.3 };
      { Fault.no_rates with Fault.dpu_fail = 0.3 };
    ]

(* ----- CIM (fig10-style) through the driver ----- *)

let test_cim_differential () =
  let run () =
    let backend = Backend.Cim (Backend.default_cim ~min_writes:true ~parallel:false ()) in
    let results, report =
      Driver.compile_and_run backend
        (build_mm 128 128 128 ())
        [ Rtval.Tensor (iota [| 128; 128 |]); Rtval.Tensor (iota [| 128; 128 |]) ]
    in
    (List.map Rtval.as_tensor results, report)
  in
  differential run (fun (r1, rep1) (r2, rep2) ->
      check_tensors "cim tree vs compiled" r1 r2;
      Alcotest.(check string)
        "cim reports identical" (Report.to_string rep1) (Report.to_string rep2))

(* ----- hand-built scf control flow ----- *)

(* Loop-carried swap: yield (b, a + b) permutes the iteration-argument
   slots, which the compiled backend must route through scratch slots. *)
let test_scf_loop_carried () =
  let run () =
    let f =
      Func.create ~name:"fib" ~arg_tys:[]
        ~result_tys:[ T.Scalar T.I32; T.Scalar T.I32 ]
    in
    let b = Builder.for_func f in
    let lb = Arith.const_index b 0
    and ub = Arith.const_index b 10
    and step = Arith.const_index b 1 in
    let i0 = Arith.constant b 0 and i1 = Arith.constant b 1 in
    let results =
      Scf_d.for_ b ~lb ~ub ~step ~init:[ i0; i1 ] (fun bb _iv iters ->
          [ iters.(1); Arith.addi bb iters.(0) iters.(1) ])
    in
    Func_d.return b results;
    Compile.run_func f []
  in
  differential run (fun (r1, p1) (r2, p2) ->
      Alcotest.(check bool) "fib results equal" true (r1 = r2);
      Alcotest.(check bool) "fib profiles equal" true (Profile.equal p1 p2);
      match r1 with
      | [ Rtval.Int a; Rtval.Int b ] ->
        Alcotest.(check int) "fib(10)" 55 a;
        Alcotest.(check int) "fib(11)" 89 b
      | _ -> Alcotest.fail "unexpected fib results")

let test_scf_if_cmpi_memref () =
  let run () =
    let f = Func.create ~name:"g" ~arg_tys:[ T.Scalar T.I32 ] ~result_tys:[ T.Scalar T.I32 ] in
    let b = Builder.for_func f in
    let m = Memref_d.alloc b [| 8 |] T.I32 in
    let lb = Arith.const_index b 0
    and ub = Arith.const_index b 8
    and step = Arith.const_index b 1 in
    Scf_d.for0 b ~lb ~ub ~step (fun bb iv ->
        let v = Arith.index_cast bb iv ~to_ty:(T.Scalar T.I32) in
        Memref_d.store bb (Arith.muli bb v v) m [ iv ]);
    let x = Func.param f 0 in
    let neg = Arith.cmpi b Arith.Slt x (Arith.constant b 0) in
    let r =
      Scf_d.if_ b neg
        ~then_:(fun bb -> [ Arith.subi bb (Arith.constant bb 0) x ])
        ~else_:(fun bb -> [ Memref_d.load bb m [ Arith.const_index bb 5 ] ])
        ~result_tys:[ T.Scalar T.I32 ]
    in
    Func_d.return b r;
    let minus = Compile.run_func f [ Rtval.Int (-3) ] in
    let plus = Compile.run_func f [ Rtval.Int 7 ] in
    (minus, plus)
  in
  differential run (fun ((m1, mp1), (p1, pp1)) ((m2, mp2), (p2, pp2)) ->
      Alcotest.(check bool) "then-branch results equal" true (m1 = m2);
      Alcotest.(check bool) "else-branch results equal" true (p1 = p2);
      Alcotest.(check bool) "then-branch profiles equal" true (Profile.equal mp1 mp2);
      Alcotest.(check bool) "else-branch profiles equal" true (Profile.equal pp1 pp2);
      Alcotest.(check bool) "then-branch value" true (m1 = [ Rtval.Int 3 ]);
      Alcotest.(check bool) "else-branch value" true (p1 = [ Rtval.Int 25 ]))

(* ----- error parity ----- *)

let catch run =
  match run () with
  | _ -> None
  | exception e -> Some (Printexc.to_string e)

let test_error_parity () =
  let oob () =
    let f = Func.create ~name:"oob" ~arg_tys:[] ~result_tys:[ T.Scalar T.I32 ] in
    let b = Builder.for_func f in
    let m = Memref_d.alloc b [| 4 |] T.I32 in
    Func_d.return b [ Memref_d.load b m [ Arith.const_index b 10 ] ];
    Compile.run_func f []
  in
  let bad_step () =
    let f = Func.create ~name:"bs" ~arg_tys:[] ~result_tys:[] in
    let b = Builder.for_func f in
    let lb = Arith.const_index b 0
    and ub = Arith.const_index b 4
    and step = Arith.const_index b 0 in
    Scf_d.for0 b ~lb ~ub ~step (fun _ _ -> ());
    Func_d.return b [];
    Compile.run_func f []
  in
  List.iter
    (fun scenario ->
      let e_tree = with_backend Compile.Tree (fun () -> catch scenario) in
      let e_comp = with_backend Compile.Compiled (fun () -> catch scenario) in
      match (e_tree, e_comp) with
      | Some a, Some b -> Alcotest.(check string) "same error" a b
      | _ -> Alcotest.fail "expected both backends to raise")
    [ oob; bad_step ]

(* ----- interpreter watchdog ----- *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= hn && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

(* A kernel that would run for ~1e9 iterations: the CINM_MAX_STEPS
   watchdog must abort it in both backends with the exact same message
   (function, op, step count) — another consequence of the shared profile
   contract, since the step counter *is* profile.launched_ops. *)
let test_watchdog_parity () =
  let spin () =
    let f = Func.create ~name:"spin" ~arg_tys:[] ~result_tys:[] in
    let b = Builder.for_func f in
    let lb = Arith.const_index b 0
    and ub = Arith.const_index b 1_000_000_000
    and step = Arith.const_index b 1 in
    Scf_d.for0 b ~lb ~ub ~step (fun _ _ -> ());
    Func_d.return b [];
    Compile.run_func ~max_steps:1000 f []
  in
  let e_tree = with_backend Compile.Tree (fun () -> catch spin) in
  let e_comp = with_backend Compile.Compiled (fun () -> catch spin) in
  match (e_tree, e_comp) with
  | Some a, Some b ->
    Alcotest.(check string) "identical watchdog diagnostics" a b;
    Alcotest.(check bool) "names the watchdog" true (contains a "watchdog");
    Alcotest.(check bool) "names the function" true (contains a "@spin");
    Alcotest.(check bool) "names the op" true (contains a "scf.for");
    Alcotest.(check bool) "names the budget" true (contains a "max 1000")
  | _ -> Alcotest.fail "expected both backends to abort"

let test_watchdog_default_off () =
  (* without a budget the same structure (with a small bound) completes *)
  let f = Func.create ~name:"ok" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let lb = Arith.const_index b 0
  and ub = Arith.const_index b 100
  and step = Arith.const_index b 1 in
  Scf_d.for0 b ~lb ~ub ~step (fun _ _ -> ());
  Func_d.return b [];
  differential
    (fun () -> Compile.run_func f [])
    (fun (r1, _) (r2, _) -> Alcotest.(check bool) "both complete" true (r1 = [] && r2 = []))

(* ----- bench --json differential ----- *)

(* wall_s is the one field that legitimately differs between two runs;
   everything else (names, sim_s, runs, jobs, schema) must match byte for
   byte. *)
let strip_wall s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let key = "\"wall_s\":" in
  let klen = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub s !i klen = key then begin
      i := !i + klen;
      while !i < n && s.[!i] <> ',' do
        incr i
      done;
      if !i < n then incr i;
      if !i < n && s.[!i] = ' ' then incr i
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* locate the bench executable relative to this test binary, so the test
   works under both `dune runtest` (cwd test/) and `dune exec` (cwd root) *)
let bench_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bench" "main.exe"))

let bench_json ~interp ~jobs =
  let out = Filename.temp_file "cinm_bench" ".json" in
  let cmd =
    Printf.sprintf
      "%s --quick --jobs %d --interp %s --json %s ablation tab4 dialects \
       >/dev/null 2>&1"
      (Filename.quote bench_exe) jobs interp (Filename.quote out)
  in
  let rc = Sys.command cmd in
  Alcotest.(check int) (Printf.sprintf "bench exit (%s)" cmd) 0 rc;
  let s = read_file out in
  Sys.remove out;
  strip_wall s

let test_bench_json_differential () =
  List.iter
    (fun jobs ->
      let t = bench_json ~interp:"tree" ~jobs in
      let c = bench_json ~interp:"compiled" ~jobs in
      Alcotest.(check string)
        (Printf.sprintf "--json identical minus wall_s at --jobs %d" jobs)
        t c)
    [ 1; 4 ]

let () =
  Alcotest.run "compile"
    [ ( "differential",
        [ Alcotest.test_case "upmem gemm, jobs 1 and 4" `Quick test_upmem_gemm;
          Alcotest.test_case "upmem gemm wram-opt, jobs 1 and 4" `Quick
            test_upmem_gemm_wram_opt;
          Alcotest.test_case "fault scenarios" `Quick test_faults_differential;
          Alcotest.test_case "cim matmul report" `Quick test_cim_differential;
        ] );
      ( "control-flow",
        [ Alcotest.test_case "loop-carried swap (fib)" `Quick test_scf_loop_carried;
          Alcotest.test_case "scf.if + cmpi + memref" `Quick test_scf_if_cmpi_memref;
          Alcotest.test_case "error parity" `Quick test_error_parity;
          Alcotest.test_case "watchdog parity" `Quick test_watchdog_parity;
          Alcotest.test_case "watchdog off by default" `Quick test_watchdog_default_off;
        ] );
      ( "bench-json",
        [ Alcotest.test_case "bit-identical at jobs 1 and 4" `Quick
            test_bench_json_differential;
        ] );
    ]
