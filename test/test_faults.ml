(* Fault injection and the fault-tolerant runtime: plan determinism (same
   seed => byte-identical decisions, stats and results at any job count),
   transparency of the retry/remap machinery (numeric results must equal
   the fault-free run), capacity/bounds diagnostics, per-workgroup MRAM
   accounting, graceful CPU fallback, and crossbar non-idealities. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
open Cinm_core
module T = Types
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim
module Fault = Cinm_support.Fault
module Pool = Cinm_support.Pool

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)
let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

let plan ?(seed = 42) rates = Fault.make ~seed rates

(* ----- the plan itself ----- *)

let test_plan_determinism () =
  let p = plan { Fault.no_rates with dpu_fail = 0.3; dpu_transient = 0.3 } in
  for dpu = 0 to 63 do
    Alcotest.(check bool) "perm decision stable" (Fault.dpu_failed p ~dpu)
      (Fault.dpu_failed p ~dpu);
    for attempt = 0 to 3 do
      Alcotest.(check bool) "transient decision stable"
        (Fault.launch_transient p ~launch:5 ~dpu ~attempt)
        (Fault.launch_transient p ~launch:5 ~dpu ~attempt)
    done
  done;
  (* a 0.3 rate over 64 DPUs hits some and spares some *)
  let hits = ref 0 in
  for dpu = 0 to 63 do
    if Fault.dpu_failed p ~dpu then incr hits
  done;
  Alcotest.(check bool) "some DPUs fail" true (!hits > 0);
  Alcotest.(check bool) "some DPUs survive" true (!hits < 64);
  (* a different seed yields a different fault set *)
  let q = plan ~seed:43 { Fault.no_rates with dpu_fail = 0.3 } in
  let differs = ref false in
  for dpu = 0 to 63 do
    if Fault.dpu_failed p ~dpu <> Fault.dpu_failed q ~dpu then differs := true
  done;
  Alcotest.(check bool) "seeds decorrelate" true !differs

let test_parse () =
  (match Fault.parse "dpu_fail=0.05,bitflip=1e-6,seed=7" with
  | Ok p ->
    Alcotest.(check int) "seed" 7 p.Fault.seed;
    Alcotest.(check (float 0.0)) "perm" 0.05 p.Fault.rates.Fault.dpu_fail;
    (* dpu_fail covers both mechanisms unless overridden *)
    Alcotest.(check (float 0.0)) "transient" 0.05 p.Fault.rates.Fault.dpu_transient;
    Alcotest.(check (float 0.0)) "bitflip" 1e-6 p.Fault.rates.Fault.mram_bitflip
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "dpu_fail=0.05,transient=0.2" with
  | Ok p ->
    Alcotest.(check (float 0.0)) "perm kept" 0.05 p.Fault.rates.Fault.dpu_fail;
    Alcotest.(check (float 0.0)) "transient overridden" 0.2
      p.Fault.rates.Fault.dpu_transient
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "nonsense=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must be rejected");
  match Fault.parse "dpu_fail=-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative rate must be rejected"

(* ----- UPMEM retry / remap transparency ----- *)

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let lower_to_upmem ~cnm_opts f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass () ]
    m;
  List.hd m.Func.funcs

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let cnm_opts =
  { Cinm_to_cnm.dpus = 8; tasklets = 4; optimize = false; max_rows_per_launch = 8 }

let run_faulted ?(jobs = 1) ~faults f args =
  Pool.set_default_jobs jobs;
  let machine =
    Usim.Machine.create ~faults (Usim.Config.default ~dimms:1 ())
  in
  let results, _ = Interp.run_func ~hooks:[ Usim.Machine.hook machine ] f args in
  Pool.set_default_jobs 1;
  (List.map Rtval.as_tensor results, machine.Usim.Machine.stats)

let gemm_under ~faults =
  let a = iota [| 32; 8 |] and bt = iota [| 8; 6 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let clean, _ = run_faulted ~faults:None (lower_to_upmem ~cnm_opts (build_mm 32 8 6 ())) args in
  let r1, s1 = run_faulted ~faults (lower_to_upmem ~cnm_opts (build_mm 32 8 6 ())) args in
  let r4, s4 =
    run_faulted ~jobs:4 ~faults (lower_to_upmem ~cnm_opts (build_mm 32 8 6 ())) args
  in
  List.iter2 (check_tensor "jobs=1 == jobs=4 under faults") r1 r4;
  Alcotest.(check bool)
    (Printf.sprintf "stats identical at any job count:\n%s\nvs\n%s"
       (Usim.Stats.to_string s1) (Usim.Stats.to_string s4))
    true (Usim.Stats.equal s1 s4);
  List.iter2 (check_tensor "faulted run reproduces fault-free results") clean r1;
  s1

let test_retry_transient () =
  let faults = Some (plan { Fault.no_rates with dpu_transient = 0.3 }) in
  let s = gemm_under ~faults in
  Alcotest.(check bool)
    (Printf.sprintf "transients retried (%d)" s.Usim.Stats.retries)
    true
    (s.Usim.Stats.retries > 0);
  Alcotest.(check bool) "retry time accounted" true
    (s.Usim.Stats.kernel_s > 0.0)

let test_permanent_masking () =
  let faults = Some (plan { Fault.no_rates with dpu_fail = 0.3 }) in
  let s = gemm_under ~faults in
  Alcotest.(check bool)
    (Printf.sprintf "failed DPUs masked at alloc (%d)" s.Usim.Stats.failed_dpus)
    true
    (s.Usim.Stats.failed_dpus > 0)

let test_exhausted_retries_remap () =
  (* transient rate high enough that some DPU fails all 4 attempts
     (p = 0.9^4 ≈ 0.66 per DPU) and is remapped to a spare *)
  let faults = Some (plan { Fault.no_rates with dpu_transient = 0.9 }) in
  let s = gemm_under ~faults in
  Alcotest.(check bool)
    (Printf.sprintf "exhausted DPUs remapped (%d)" s.Usim.Stats.failed_dpus)
    true
    (s.Usim.Stats.failed_dpus > 0);
  Alcotest.(check bool) "remap restaging time accounted" true
    (s.Usim.Stats.remap_s > 0.0)

let test_bitflip_determinism () =
  (* bit flips corrupt data (the fault retries can't hide); the test is
     that two same-seed runs corrupt identically, and that the fault
     plan's decisions are reflected in the machine's scatter stream *)
  let faults = Some (plan { Fault.no_rates with mram_bitflip = 0.05 }) in
  let a = iota [| 32; 8 |] and bt = iota [| 8; 6 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let r1, _ = run_faulted ~faults (lower_to_upmem ~cnm_opts (build_mm 32 8 6 ())) args in
  let r2, _ = run_faulted ~faults (lower_to_upmem ~cnm_opts (build_mm 32 8 6 ())) args in
  List.iter2 (check_tensor "same seed => identical corruption") r1 r2

(* ----- capacity and bounds diagnostics ----- *)

let run_kernel build_body ~ins ~out_shape =
  let f =
    Func.create ~name:"k"
      ~arg_tys:(List.map (fun t -> tensor t.Tensor.shape) ins)
      ~result_tys:[ tensor out_shape ]
  in
  let b = Builder.for_func f in
  let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:2 in
  let in_bufs =
    List.mapi
      (fun i t ->
        let n = Tensor.num_elements t in
        let buf = Upmem_d.alloc b wg ~shape:[| n / 4 |] ~dtype:T.I32 ~level:0 in
        ignore (Upmem_d.scatter b (Func.param f i) buf wg ~map:"block");
        buf)
      ins
  in
  let out_buf =
    Upmem_d.alloc b wg
      ~shape:[| Cinm_support.Util.product_of_shape out_shape / 4 |]
      ~dtype:T.I32 ~level:0
  in
  ignore (Upmem_d.launch b wg ~tasklets:2 ~ins:in_bufs ~outs:[ out_buf ] build_body);
  let out, _ = Upmem_d.gather b out_buf wg ~result_shape:out_shape in
  Func_d.return b [ out ];
  let machine = Usim.Machine.create ~faults:None (Usim.Config.default ~dimms:1 ()) in
  ignore (Usim.Machine.run machine f (List.map (fun t -> Rtval.Tensor t) ins))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_dpu_failure ~substring run =
  match run () with
  | _ -> Alcotest.failf "expected a Dpu_failed mentioning %S" substring
  | exception Usim.Machine.Dpu_failed { message; dpu; _ } ->
    if not (contains message substring) then
      Alcotest.failf "diagnostic %S does not mention %S" message substring;
    Alcotest.(check bool) "failing DPU identified" true (dpu >= 0)

let test_wram_capacity_enforced () =
  (* 20000 x i32 = 80 kB > the 64 kB WRAM *)
  let input = iota [| 8 |] in
  expect_dpu_failure ~substring:"WRAM" (fun () ->
      run_kernel
        (fun bb _args -> ignore (Upmem_d.wram_shared_alloc bb [| 20000 |] T.I32))
        ~ins:[ input ] ~out_shape:[| 8 |])

let test_dma_bounds_checked () =
  let input = iota [| 8 |] in
  expect_dpu_failure ~substring:"upmem.mram_read" (fun () ->
      run_kernel
        (fun bb args ->
          let wram = Upmem_d.wram_alloc bb [| 2 |] T.I32 in
          let c0 = Arith.const_index bb 0 in
          (* each PU's MRAM slice has 2 elements; reading 6 overruns *)
          Upmem_d.mram_read bb ~mram:args.(0) ~wram ~mram_off:c0 ~wram_off:c0
            ~count:6)
        ~ins:[ input ] ~out_shape:[| 8 |])

let test_mram_accounting_per_workgroup () =
  (* two live workgroups; freeing one must release only its own bytes *)
  let f = Func.create ~name:"two_wgs" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let wg1 = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:1 in
  let wg2 = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:1 in
  (* per DPU: 64 elements x 4 B = 256 B for wg1; 32 x 4 = 128 B for wg2 *)
  ignore (Upmem_d.alloc b wg1 ~shape:[| 64 |] ~dtype:T.I32 ~level:0);
  ignore (Upmem_d.alloc b wg2 ~shape:[| 32 |] ~dtype:T.I32 ~level:0);
  Upmem_d.free_dpus b wg1;
  Func_d.return b [];
  let machine = Usim.Machine.create ~faults:None (Usim.Config.default ~dimms:1 ()) in
  ignore (Usim.Machine.run machine f []);
  Alcotest.(check int) "only wg2's bytes remain accounted" 128
    machine.Usim.Machine.mram_used_per_dpu

(* ----- graceful CPU fallback ----- *)

let test_cpu_fallback_matches_device () =
  let a = iota [| 8; 4 |] and bt = iota [| 4; 6 |] in
  let args = [ Rtval.Tensor a; Rtval.Tensor bt ] in
  let expected, _ = Interp.run_func (build_mm 8 4 6 ()) args in
  (* a working device path for reference *)
  let good = Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ()) in
  let device, _ = Driver.compile_and_run good (build_mm 8 4 6 ()) args in
  (* dimms:0 makes the cnm lowering fail (0 DPUs); the driver must degrade
     to the scf CPU lowering instead of dying *)
  let broken = Backend.Upmem (Backend.default_upmem ~dimms:0 ()) in
  let compiled = Driver.compile_func broken (build_mm 8 4 6 ()) in
  (match compiled.Driver.fallback with
  | Some diag ->
    Alcotest.(check bool) "diagnostic names the failing pass" true
      (String.length diag.Pass.pass > 0)
  | None -> Alcotest.fail "expected a fallback diagnostic");
  let results, report = Driver.run compiled args in
  Alcotest.(check bool) "report marks the fallback" true
    (contains report.Report.backend "cpu-fallback");
  check_tensor "fallback result == host reference"
    (Rtval.as_tensor (List.hd expected))
    (Rtval.as_tensor (List.hd results));
  check_tensor "fallback result == device result"
    (Rtval.as_tensor (List.hd device))
    (Rtval.as_tensor (List.hd results))

let test_fallback_disabled_raises () =
  let broken = Backend.Upmem (Backend.default_upmem ~dimms:0 ()) in
  match Driver.compile_func ~fallback:false broken (build_mm 8 4 6 ()) with
  | _ -> Alcotest.fail "expected Pass_failed with fallback disabled"
  | exception Pass.Pass_failed diag ->
    Alcotest.(check bool) "structured diagnostic" true
      (String.length (Pass.diag_to_string diag) > 0)

(* ----- crossbar non-idealities ----- *)

let crossbar_gemm ~faults a w =
  let f =
    Func.create ~name:"xb" ~arg_tys:[ tensor [| 8; 8 |]; tensor [| 8; 8 |] ]
      ~result_tys:[ tensor [| 8; 8 |] ]
  in
  let b = Builder.for_func f in
  let id = Memristor_d.alloc b ~rows:8 ~cols:8 ~tiles:2 in
  Memristor_d.store_tile b id ~tile:0 (Func.param f 1);
  Memristor_d.copy_tile b id ~tile:0 (Func.param f 0);
  let r = Memristor_d.gemm_tile b id ~tile:0 ~result_ty:(tensor [| 8; 8 |]) in
  Memristor_d.release b id;
  Func_d.return b [ r ];
  let machine = Msim.Machine.create ~faults (Msim.Config.default ()) in
  let results, stats =
    Msim.Machine.run machine f [ Rtval.Tensor a; Rtval.Tensor w ]
  in
  (Rtval.as_tensor (List.hd results), stats)

let test_stuck_at_zero_kills_output () =
  let a = iota [| 8; 8 |] and w = Tensor.init [| 8; 8 |] (fun i -> (i mod 3) + 1) in
  let faults = Some (plan { Fault.no_rates with stuck0 = 1.0 }) in
  let out, stats = crossbar_gemm ~faults a w in
  Alcotest.(check bool) "all cells clamped" true
    (stats.Msim.Stats.stuck_cells = 64);
  Alcotest.(check bool) "stuck-at-0 everywhere zeroes the MVM" true
    (Tensor.equal out (Tensor.zeros [| 8; 8 |] T.I32))

let test_gain_variation_calibrates () =
  let a = iota [| 8; 8 |] and w = iota [| 8; 8 |] in
  let ideal, s_ideal = crossbar_gemm ~faults:None a w in
  let faults = Some (plan { Fault.no_rates with gain_var = 0.5 }) in
  let out, stats = crossbar_gemm ~faults a w in
  Alcotest.(check bool)
    (Printf.sprintf "gain drift forces write-verify (%d)" stats.Msim.Stats.calibrations)
    true
    (stats.Msim.Stats.calibrations > 0);
  Alcotest.(check bool) "calibration costs io time" true
    (stats.Msim.Stats.io_s > s_ideal.Msim.Stats.io_s);
  check_tensor "calibrated results are unaffected" ideal out

let () =
  Alcotest.run "faults"
    [ ( "plan",
        [ Alcotest.test_case "decisions deterministic per seed" `Quick
            test_plan_determinism;
          Alcotest.test_case "spec parsing" `Quick test_parse;
        ] );
      ( "upmem",
        [ Alcotest.test_case "transients retried, results clean" `Quick
            test_retry_transient;
          Alcotest.test_case "permanent failures masked at alloc" `Quick
            test_permanent_masking;
          Alcotest.test_case "exhausted retries remap to spares" `Quick
            test_exhausted_retries_remap;
          Alcotest.test_case "bitflips deterministic per seed" `Quick
            test_bitflip_determinism;
          Alcotest.test_case "WRAM capacity enforced" `Quick
            test_wram_capacity_enforced;
          Alcotest.test_case "DMA bounds checked" `Quick test_dma_bounds_checked;
          Alcotest.test_case "MRAM accounting per workgroup" `Quick
            test_mram_accounting_per_workgroup;
        ] );
      ( "fallback",
        [ Alcotest.test_case "CPU fallback matches device path" `Quick
            test_cpu_fallback_matches_device;
          Alcotest.test_case "fallback off raises Pass_failed" `Quick
            test_fallback_disabled_raises;
        ] );
      ( "memristor",
        [ Alcotest.test_case "stuck-at-0 crossbar" `Quick
            test_stuck_at_zero_kills_output;
          Alcotest.test_case "gain variation write-verify" `Quick
            test_gain_variation_calibrates;
        ] );
    ]
