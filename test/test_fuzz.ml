(* Tests for the differential fuzzing harness: generator determinism
   (byte-identical at any jobs setting), verifier validity by
   construction, grammar coverage, the oracle matrix on the committed
   regression corpus, and the fuzz-seed reproducer header round-trip. *)

open Cinm_ir
module Fuzz = Cinm_fuzz_lib
module Pool = Cinm_support.Pool

let () = Cinm_dialects.Registry.ensure_all ()

let gen_text seed = Printer.module_to_string (Fuzz.Gen.generate ~seed ())

let with_jobs j f =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs j;
      f ())

(* ----- determinism ----- *)

let test_deterministic () =
  (* same seed, same bytes — across repeated calls and jobs settings *)
  List.iter
    (fun seed ->
      let a = gen_text seed in
      let b = gen_text seed in
      Alcotest.(check string) (Printf.sprintf "seed %d repeat" seed) a b;
      let c = with_jobs 1 (fun () -> gen_text seed) in
      let d = with_jobs 4 (fun () -> gen_text seed) in
      Alcotest.(check string) (Printf.sprintf "seed %d jobs=1" seed) a c;
      Alcotest.(check string) (Printf.sprintf "seed %d jobs=4" seed) a d)
    [ 0; 1; 7; 42; 199 ];
  (* different seeds diverge (SplitMix64 streams are independent) *)
  Alcotest.(check bool) "seeds 0 and 1 differ" true (gen_text 0 <> gen_text 1)

let test_args_deterministic () =
  let m = Fuzz.Gen.generate ~seed:11 () in
  let f = List.hd m.Func.funcs in
  let a = Fuzz.Gen.arg_values ~seed:11 f in
  let b = Fuzz.Gen.arg_values ~seed:11 f in
  Alcotest.(check (list string))
    "argument synthesis is seed-pure"
    (List.map Cinm_interp.Rtval.to_string a)
    (List.map Cinm_interp.Rtval.to_string b)

(* ----- validity ----- *)

let n_validity = 500

let test_valid_by_construction () =
  for seed = 0 to n_validity - 1 do
    let m = Fuzz.Gen.generate ~seed () in
    (match Verifier.verify_module m with
    | [] -> ()
    | errs ->
      Alcotest.failf "seed %d: %d verifier error(s): %s" seed (List.length errs)
        (String.concat "; " (List.map Verifier.error_to_string errs)));
    (* and the printed text parses back to a verifier-valid module *)
    let m2 = Parser.parse_module_text (Printer.module_to_string m) in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d round-trips clean" seed)
      []
      (List.map Verifier.error_to_string (Verifier.verify_module m2))
  done

(* ----- distribution sanity ----- *)

let test_distribution () =
  (* over a few hundred seeds the generator must actually exercise the
     surface it claims: every grammar op appears somewhere, and the
     dtype mix covers ints, narrow ints and floats *)
  let texts = List.init 300 gen_text in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then false
      else if String.sub hay i nn = needle then true
      else go (i + 1)
    in
    go 0
  in
  let seen op = List.exists (fun t -> contains t op) texts in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Printf.sprintf "grammar op %s appears in 300 seeds" op)
        true (seen op))
    Fuzz.Gen.grammar;
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        (Printf.sprintf "dtype %s appears in 300 seeds" dt)
        true (seen dt))
    [ "i8"; "i16"; "i32"; "f32"; "f64" ]

(* ----- the committed regression corpus ----- *)

let corpus_files () =
  Sys.readdir "fixtures/fuzz" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mlir")
  |> List.sort compare
  |> List.map (Filename.concat "fixtures/fuzz")

let test_corpus_headers () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      match Fuzz.Campaign.fuzz_seed_of_text text with
      | None -> Alcotest.failf "%s: no // fuzz-seed: header" path
      | Some seed ->
        (* the corpus file is exactly what its seed generates today —
           regenerate with cinm_fuzz --dump-seed when the grammar moves *)
        let m = Parser.parse_module_text text in
        Alcotest.(check string)
          (Printf.sprintf "%s matches --dump-seed %d" path seed)
          (gen_text seed)
          (Printer.module_to_string m))
    files

let test_corpus_oracle () =
  (* every historic bug-finding seed must stay green through the full
     differential matrix — this is the regression suite the fuzzer won *)
  List.iter
    (fun path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      let seed = Option.get (Fuzz.Campaign.fuzz_seed_of_text text) in
      match Fuzz.Oracle.check_seed ~seed text with
      | [] -> ()
      | ms ->
        Alcotest.failf "%s: %s" path
          (String.concat "; "
             (List.map
                (fun (m : Fuzz.Oracle.mismatch) ->
                  m.Fuzz.Oracle.axis ^ ": " ^ m.Fuzz.Oracle.detail)
                ms)))
    (corpus_files ())

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "seed-deterministic at any jobs" `Quick
            test_deterministic;
          Alcotest.test_case "argument synthesis seed-pure" `Quick
            test_args_deterministic;
          Alcotest.test_case
            (Printf.sprintf "%d modules verifier-valid" n_validity)
            `Slow test_valid_by_construction;
          Alcotest.test_case "grammar and dtype coverage" `Slow
            test_distribution;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "fixtures carry fuzz-seed headers" `Quick
            test_corpus_headers;
          Alcotest.test_case "historic seeds green on the full matrix" `Slow
            test_corpus_oracle;
        ] );
    ]
