(* Unit and property tests for the core IR: construction, printing,
   parsing round-trips, verification, cloning. *)

open Cinm_ir
open Cinm_dialects
module T = Types

let () = Registry.ensure_all ()

let i32 = T.Scalar T.I32
let tensor shape = T.Tensor (shape, T.I32)

(* ----- helpers ----- *)

let build_gemm_func ?(name = "mm") m k n =
  let f =
    Func.create ~name ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  let out = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ out ];
  f

(* ----- types ----- *)

let test_type_printing () =
  Alcotest.(check string) "tensor" "tensor<4x8xi32>" (T.to_string (tensor [| 4; 8 |]));
  Alcotest.(check string) "memref" "memref<2xf32>" (T.to_string (T.MemRef ([| 2 |], T.F32)));
  Alcotest.(check string)
    "workgroup" "!cnm.workgroup<8x2>"
    (T.to_string (T.Workgroup [| 8; 2 |]));
  Alcotest.(check string)
    "buffer" "!cnm.buffer<16x16xi16, level 0>"
    (T.to_string (T.Buffer { shape = [| 16; 16 |]; dtype = T.I16; level = 0 }));
  Alcotest.(check string) "index" "index" (T.to_string T.Index)

let test_type_roundtrip () =
  let types =
    [
      T.Index; i32; T.Scalar T.I1; T.Scalar T.F64;
      tensor [| 15888; 16 |];
      T.MemRef ([| 3; 3; 3 |], T.I16);
      T.Workgroup [| 8; 2; 4 |];
      T.Buffer { shape = [| 64 |]; dtype = T.I32; level = 1 };
      T.Token; T.Cim_id;
    ]
  in
  List.iter
    (fun ty ->
      match T.of_string (T.to_string ty) with
      | Some ty' -> Alcotest.(check string) "roundtrip" (T.to_string ty) (T.to_string ty')
      | None -> Alcotest.failf "could not parse %s" (T.to_string ty))
    types

let test_type_sizes () =
  Alcotest.(check int) "tensor bytes" (4 * 8 * 4) (T.size_in_bytes (tensor [| 4; 8 |]));
  Alcotest.(check int) "i16 bytes" 2 (T.dtype_bytes T.I16);
  Alcotest.(check int) "elements" 32 (T.num_elements (tensor [| 4; 8 |]))

(* ----- construction ----- *)

let test_build_func () =
  let f = build_gemm_func 4 5 6 in
  let entry = Func.entry_block f in
  Alcotest.(check int) "two ops" 2 (Ir.num_ops entry);
  let gemm = Ir.op_at entry 0 in
  Alcotest.(check string) "op name" "cinm.gemm" gemm.Ir.name;
  Alcotest.(check string)
    "result type" "tensor<4x6xi32>"
    (T.to_string (Ir.result gemm 0).Ir.ty)

let test_verify_ok () =
  let f = build_gemm_func 4 5 6 in
  Alcotest.(check int) "no errors" 0 (List.length (Verifier.verify_func f))

let test_verify_rejects_bad_gemm () =
  let f =
    Func.create ~name:"bad" ~arg_tys:[ tensor [| 4; 5 |]; tensor [| 7; 6 |] ]
      ~result_tys:[ tensor [| 4; 6 |] ]
  in
  let b = Builder.for_func f in
  (* shape mismatch: 4x5 * 7x6 *)
  let out =
    Builder.build1 b "cinm.gemm"
      ~operands:[ Func.param f 0; Func.param f 1 ]
      ~result_tys:[ tensor [| 4; 6 |] ]
  in
  Func_d.return b [ out ];
  Alcotest.(check bool) "has errors" true (Verifier.verify_func f <> [])

let test_verify_rejects_unregistered () =
  let f = Func.create ~name:"u" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  Builder.build0 b "bogus.op";
  Func_d.return b [];
  Alcotest.(check bool) "has errors" true (Verifier.verify_func f <> [])

let test_verify_rejects_use_before_def () =
  let f = Func.create ~name:"dom" ~arg_tys:[] ~result_tys:[] in
  let entry = Func.entry_block f in
  (* Build the ops out of order by hand. *)
  let c = Ir.create_op ~result_tys:[ T.Index ] ~attrs:[ ("value", Attr.Int 1) ] "arith.constant" in
  let use = Ir.create_op ~operands:[ Ir.result c 0; Ir.result c 0 ] ~result_tys:[ T.Index ] "arith.addi" in
  Ir.append_op entry use;
  Ir.append_op entry c;
  let ret = Ir.create_op "func.return" in
  Ir.append_op entry ret;
  Alcotest.(check bool) "has errors" true (Verifier.verify_func f <> [])

(* ----- region scoping edge cases ----- *)

let has_dominance_error errs =
  List.exists
    (fun (e : Verifier.error) ->
      let s = Verifier.error_to_string e in
      let rec mem i =
        i + 17 <= String.length s
        && (String.sub s i 17 = "does not dominate" || mem (i + 1))
      in
      mem 0)
    errs

let test_verify_cross_region_dominance () =
  (* a value defined inside an scf.for body is not visible after the loop *)
  let f = Func.create ~name:"esc" ~arg_tys:[] ~result_tys:[ T.Index ] in
  let b = Builder.for_func f in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let escaped = ref None in
  let _ =
    Scf_d.for_ b ~lb:c0 ~ub:c1 ~step:c1 ~init:[] (fun bb _iv _iters ->
        escaped := Some (Arith.const_index bb 7);
        [])
  in
  Func_d.return b [ Option.get !escaped ];
  let errs = Verifier.verify_func f in
  Alcotest.(check bool) "rejected" true (errs <> []);
  Alcotest.(check bool) "dominance error" true (has_dominance_error errs)

let test_verify_sibling_region_use () =
  (* a value defined in scf.if's then-region is not visible in its
     else-region: sibling regions do not dominate each other *)
  let f = Func.create ~name:"sib" ~arg_tys:[ T.Scalar T.I1 ] ~result_tys:[] in
  let b = Builder.for_func f in
  let leaked = ref None in
  let then_region =
    Builder.build_region (fun bb _ ->
        leaked := Some (Arith.const_index bb 1);
        Scf_d.yield bb [])
  in
  let else_region =
    Builder.build_region (fun bb _ ->
        let v = Option.get !leaked in
        let _ = Builder.build1 bb "arith.addi" ~operands:[ v; v ] ~result_tys:[ T.Index ] in
        Scf_d.yield bb [])
  in
  let _ =
    Builder.build b "scf.if" ~operands:[ Func.param f 0 ]
      ~regions:[ then_region; else_region ]
  in
  Func_d.return b [];
  let errs = Verifier.verify_func f in
  Alcotest.(check bool) "rejected" true (errs <> []);
  Alcotest.(check bool) "dominance error" true (has_dominance_error errs)

let test_verify_region_capture_allowed () =
  (* non-isolated regions (scf.for) may capture dominating outer values *)
  let f = Func.create ~name:"cap" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let c0 = Arith.const_index b 0 in
  let c1 = Arith.const_index b 1 in
  let outer = Arith.const_index b 5 in
  Scf_d.for0 b ~lb:c0 ~ub:c1 ~step:c1 (fun bb _iv -> ignore (Arith.addi bb outer outer));
  Func_d.return b [];
  Alcotest.(check int) "no errors" 0 (List.length (Verifier.verify_func f))

let test_verify_launch_isolated () =
  (* the same capture inside a cnm.launch body is rejected: launch bodies
     are isolated_from_above and may only use their block arguments *)
  let f = Func.create ~name:"iso" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let wg = Cnm_d.workgroup b ~shape:[| 2 |] ~physical_dims:[ "dpu" ] in
  let buf = Cnm_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
  let outer = Arith.const_index b 3 in
  let tok =
    Cnm_d.launch b wg ~ins:[] ~outs:[ buf ] (fun bb _args ->
        ignore
          (Builder.build1 bb "arith.addi" ~operands:[ outer; outer ]
             ~result_tys:[ T.Index ]))
  in
  Cnm_d.wait b [ tok ];
  Func_d.return b [];
  let errs = Verifier.verify_func f in
  Alcotest.(check bool) "rejected" true (errs <> []);
  Alcotest.(check bool) "dominance error" true (has_dominance_error errs)

let test_verify_upmem_launch_isolated () =
  let f = Func.create ~name:"iso_upmem" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let wg = Upmem_d.alloc_dpus b ~dimms:1 ~dpus:2 ~tasklets:1 in
  let buf = Upmem_d.alloc b wg ~shape:[| 4 |] ~dtype:T.I32 ~level:0 in
  let outer = Arith.const_index b 3 in
  let _ =
    Upmem_d.launch b wg ~tasklets:1 ~ins:[] ~outs:[ buf ] (fun bb _args ->
        ignore
          (Builder.build1 bb "arith.addi" ~operands:[ outer; outer ]
             ~result_tys:[ T.Index ]))
  in
  Upmem_d.free_dpus b wg;
  Func_d.return b [];
  let errs = Verifier.verify_func f in
  Alcotest.(check bool) "rejected" true (errs <> []);
  Alcotest.(check bool) "dominance error" true (has_dominance_error errs)

let test_clone_independent () =
  let f = build_gemm_func 4 5 6 in
  let g = Func.clone f in
  Alcotest.(check int) "clone verifies" 0 (List.length (Verifier.verify_func g));
  (* mutating the clone must not affect the original *)
  let g_entry = Func.entry_block g in
  Ir.clear_ops g_entry;
  Alcotest.(check int) "original intact" 2 (Ir.num_ops (Func.entry_block f))

(* ----- printing and parsing ----- *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= hn && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_print_gemm () =
  let f = build_gemm_func 4 5 6 in
  let text = Printer.func_to_string f in
  Alcotest.(check bool)
    "mentions gemm" true
    (contains text "\"cinm.gemm\"(%arg0, %arg1)")

let test_parse_roundtrip () =
  let f = build_gemm_func 8 8 8 in
  let text = Printer.func_to_string f in
  let f' = Parser.parse_func_text text in
  let text' = Printer.func_to_string f' in
  Alcotest.(check string) "fixpoint" text text';
  Alcotest.(check int) "parsed verifies" 0 (List.length (Verifier.verify_func f'))

let test_parse_region_roundtrip () =
  let f =
    Func.create ~name:"loop" ~arg_tys:[ tensor [| 16 |] ] ~result_tys:[ tensor [| 16 |] ]
  in
  let b = Builder.for_func f in
  let lb = Arith.const_index b 0 in
  let ub = Arith.const_index b 4 in
  let step = Arith.const_index b 1 in
  let results =
    Scf_d.for_ b ~lb ~ub ~step ~init:[ Func.param f 0 ] (fun bb _iv iters ->
        [ Cinm_d.add bb iters.(0) iters.(0) ])
  in
  Func_d.return b results;
  let text = Printer.func_to_string f in
  let f' = Parser.parse_func_text text in
  Alcotest.(check string) "fixpoint" text (Printer.func_to_string f');
  Alcotest.(check int) "verifies" 0 (List.length (Verifier.verify_func f'))

let test_parse_module () =
  let m = Func.create_module () in
  Func.add_func m (build_gemm_func ~name:"a" 2 3 4);
  Func.add_func m (build_gemm_func ~name:"b" 5 6 7);
  let text = Printer.module_to_string m in
  let m' = Parser.parse_module_text text in
  Alcotest.(check int) "two funcs" 2 (List.length m'.Func.funcs);
  Alcotest.(check string) "fixpoint" text (Printer.module_to_string m')

let test_parse_attrs () =
  let f = Func.create ~name:"attrs" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let _ =
    Builder.build b "cnm.workgroup"
      ~attrs:
        [
          ("physical_dims", Attr.Strs [ "dpu"; "thread" ]);
          ("flag", Attr.Bool true);
          ("sizes", Attr.Ints [| 1; -2; 3 |]);
          ("scale", Attr.Float 2.5);
          ("label", Attr.Str "hello \"world\"");
        ]
      ~result_tys:[ T.Workgroup [| 2; 2 |] ]
  in
  Func_d.return b [];
  let text = Printer.func_to_string f in
  let f' = Parser.parse_func_text text in
  Alcotest.(check string) "fixpoint" text (Printer.func_to_string f')

let test_parse_error_reported () =
  match Parser.parse_func_text "func.func @x() -> () { garbage }" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let expect_parse_error name text =
  match Parser.parse_func_text text with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected parse error" name

let test_parse_negative_cases () =
  expect_parse_error "undefined value"
    {|func.func @x() -> () {
  "func.return"(%nope) : (i32) -> ()
}|};
  expect_parse_error "bad type"
    {|func.func @x(%arg0: tensor<wat>) -> () {
  "func.return"() : () -> ()
}|};
  expect_parse_error "result arity mismatch"
    {|func.func @x() -> () {
  %0, %1 = "tensor.empty"() : () -> (tensor<1xi32>)
  "func.return"() : () -> ()
}|};
  expect_parse_error "unterminated string"
    {|func.func @x() -> () {
  "func.return|};
  expect_parse_error "trailing input"
    {|func.func @x() -> () {
  "func.return"() : () -> ()
}
extra|}

(* ----- parse error diagnostics (line/column + caret context) ----- *)

let parse_error_of text =
  match Parser.parse_func_text text with
  | exception Parser.Parse_error e -> e
  | _ -> Alcotest.fail "expected parse error"

let test_parse_error_location () =
  let e =
    parse_error_of
      "func.func @x() -> () {\n  \"func.return\"(%nope) : (i32) -> ()\n}"
  in
  Alcotest.(check string) "message" "use of undefined value %nope" e.Parser.message;
  Alcotest.(check int) "line" 2 e.Parser.line;
  Alcotest.(check int) "column" 23 e.Parser.col;
  Alcotest.(check bool) "caret" true (contains e.Parser.context "^");
  Alcotest.(check bool) "offending line shown" true (contains e.Parser.context "%nope");
  Alcotest.(check bool) "rendered position" true
    (contains (Parser.error_to_string e) "at line 2, column 23")

let test_parse_error_messages () =
  let e =
    parse_error_of
      "func.func @x(%arg0: tensor<wat>) -> () {\n  \"func.return\"() : () -> ()\n}"
  in
  Alcotest.(check bool) "invalid type" true (contains e.Parser.message "invalid type");
  Alcotest.(check int) "on line 1" 1 e.Parser.line;
  let e =
    parse_error_of "func.func @x() -> () {\n  \"func.return\"() : () -> ()\n}\nextra"
  in
  Alcotest.(check string) "trailing input" "trailing input" e.Parser.message;
  Alcotest.(check int) "on line 4" 4 e.Parser.line;
  Alcotest.(check int) "at column 1" 1 e.Parser.col;
  let e = parse_error_of "func.func @x() -> () {\n  \"oops" in
  Alcotest.(check string) "unterminated" "unterminated string" e.Parser.message;
  Alcotest.(check int) "on line 2" 2 e.Parser.line

let test_parse_comments_and_whitespace () =
  let f =
    Parser.parse_func_text
      {|// leading comment
func.func @c(%arg0: i32) -> (i32) {
  // a comment between ops
  %0 = "arith.addi"(%arg0, %arg0) : (i32, i32) -> (i32)
  "func.return"(%0) : (i32) -> ()
}|}
  in
  Alcotest.(check int) "verifies" 0 (List.length (Verifier.verify_func f))

let test_clone_nested_regions () =
  (* clone a function with a loop nest and check the clone's regions are
     fresh objects with consistent arg wiring *)
  let f = Func.create ~name:"nest" ~arg_tys:[ T.Index ] ~result_tys:[ T.Index ] in
  let b = Builder.for_func f in
  let c1 = Arith.const_index b 1 in
  let outer =
    Scf_d.for_ b ~lb:c1 ~ub:c1 ~step:c1 ~init:[ Func.param f 0 ] (fun bb _ iters ->
        let inner =
          Scf_d.for_ bb ~lb:c1 ~ub:c1 ~step:c1 ~init:[ iters.(0) ] (fun bb2 _ it2 ->
              [ Arith.addi bb2 it2.(0) it2.(0) ])
        in
        inner)
  in
  Func_d.return b outer;
  let g = Func.clone f in
  Alcotest.(check int) "clone verifies" 0 (List.length (Verifier.verify_func g));
  (* ops must be distinct objects *)
  let ids f =
    let acc = ref [] in
    Func.walk (fun op -> acc := op.Ir.oid :: !acc) f;
    !acc
  in
  let shared = List.filter (fun i -> List.mem i (ids f)) (ids g) in
  Alcotest.(check int) "no shared ops" 0 (List.length shared)

let test_walk_order () =
  let f = build_gemm_func 2 2 2 in
  let names = ref [] in
  Func.walk (fun op -> names := op.Ir.name :: !names) f;
  Alcotest.(check (list string)) "pre-order walk"
    [ "cinm.gemm"; "func.return" ]
    (List.rev !names)

let test_replace_uses () =
  let f = Func.create ~name:"r" ~arg_tys:[ T.Index; T.Index ] ~result_tys:[ T.Index ] in
  let b = Builder.for_func f in
  let s = Arith.addi b (Func.param f 0) (Func.param f 0) in
  Func_d.return b [ s ];
  Ir.replace_uses_in_region f.Func.body ~old_v:(Func.param f 0) ~new_v:(Func.param f 1);
  let uses_p0 = ref 0 in
  Func.walk
    (fun op ->
      Array.iter
        (fun (v : Ir.value) -> if v == Func.param f 0 then incr uses_p0)
        op.Ir.operands)
    f;
  Alcotest.(check int) "no uses of the old value" 0 !uses_p0

(* ----- qcheck properties ----- *)

let arb_small_dims = QCheck.(triple (1 -- 12) (1 -- 12) (1 -- 12))

let prop_gemm_roundtrip =
  QCheck.Test.make ~name:"printer/parser roundtrip on random gemm shapes" ~count:50
    arb_small_dims (fun (m, k, n) ->
      let f = build_gemm_func m k n in
      let text = Printer.func_to_string f in
      let f' = Parser.parse_func_text text in
      Printer.func_to_string f' = text && Verifier.verify_func f' = [])

let prop_attr_ints_roundtrip =
  QCheck.Test.make ~name:"ints attribute roundtrip" ~count:100
    QCheck.(list int)
    (fun ints ->
      let f = Func.create ~name:"a" ~arg_tys:[] ~result_tys:[] in
      let b = Builder.for_func f in
      let _ =
        Builder.build b "tensor.empty"
          ~attrs:[ ("xs", Attr.Ints (Array.of_list ints)) ]
          ~result_tys:[ tensor [| 1 |] ]
      in
      Func_d.return b [];
      let text = Printer.func_to_string f in
      Printer.func_to_string (Parser.parse_func_text text) = text)

let () =
  Alcotest.run "ir"
    [
      ( "types",
        [
          Alcotest.test_case "printing" `Quick test_type_printing;
          Alcotest.test_case "roundtrip" `Quick test_type_roundtrip;
          Alcotest.test_case "sizes" `Quick test_type_sizes;
        ] );
      ( "construction",
        [
          Alcotest.test_case "build func" `Quick test_build_func;
          Alcotest.test_case "clone is independent" `Quick test_clone_independent;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts valid" `Quick test_verify_ok;
          Alcotest.test_case "rejects shape mismatch" `Quick test_verify_rejects_bad_gemm;
          Alcotest.test_case "rejects unregistered op" `Quick test_verify_rejects_unregistered;
          Alcotest.test_case "rejects use before def" `Quick test_verify_rejects_use_before_def;
          Alcotest.test_case "rejects cross-region escape" `Quick
            test_verify_cross_region_dominance;
          Alcotest.test_case "rejects sibling-region use" `Quick
            test_verify_sibling_region_use;
          Alcotest.test_case "allows dominating capture" `Quick
            test_verify_region_capture_allowed;
          Alcotest.test_case "cnm.launch is isolated" `Quick test_verify_launch_isolated;
          Alcotest.test_case "upmem.launch is isolated" `Quick
            test_verify_upmem_launch_isolated;
        ] );
      ( "parser",
        [
          Alcotest.test_case "print gemm" `Quick test_print_gemm;
          Alcotest.test_case "gemm roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "region roundtrip" `Quick test_parse_region_roundtrip;
          Alcotest.test_case "module roundtrip" `Quick test_parse_module;
          Alcotest.test_case "attrs roundtrip" `Quick test_parse_attrs;
          Alcotest.test_case "reports errors" `Quick test_parse_error_reported;
          Alcotest.test_case "negative cases" `Quick test_parse_negative_cases;
          Alcotest.test_case "error location" `Quick test_parse_error_location;
          Alcotest.test_case "error messages" `Quick test_parse_error_messages;
          Alcotest.test_case "comments + whitespace" `Quick test_parse_comments_and_whitespace;
        ] );
      ( "ir utilities",
        [
          Alcotest.test_case "clone nested regions" `Quick test_clone_nested_regions;
          Alcotest.test_case "walk order" `Quick test_walk_order;
          Alcotest.test_case "replace uses" `Quick test_replace_uses;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_gemm_roundtrip;
          QCheck_alcotest.to_alcotest prop_attr_ints_roundtrip;
        ] );
    ]
