(* Tests for the Trace.Metrics registry: log-bucketed histogram geometry,
   exact shard merging across domains under concurrent snapshot churn,
   and the Prometheus text exposition (ordering, escaping, cumulative
   buckets).

   This binary owns the (process-global) registry: it resets it between
   cases, which the other test binaries never observe. *)

module M = Cinm_support.Trace.Metrics

(* ----- bucket geometry ----- *)

(* The contract: bucket [i] covers (bucket_upper (i-1), bucket_upper i],
   so for every value v: v <= upper(bucket_of v) and, unless v fell in
   bucket 0, v > upper(bucket_of v - 1). *)
let test_bucket_boundaries () =
  let check v =
    let b = M.bucket_of_value v in
    Alcotest.(check bool)
      (Printf.sprintf "%.17g in range [0,%d)" v M.n_buckets)
      true
      (b >= 0 && b < M.n_buckets);
    Alcotest.(check bool)
      (Printf.sprintf "%.17g <= upper(%d)" v b)
      true
      (v <= M.bucket_upper b);
    if b > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "%.17g > upper(%d)" v (b - 1))
        true
        (v > M.bucket_upper (b - 1))
  in
  (* a log sweep across the whole range, plus awkward values *)
  let v = ref 1e-12 in
  while !v < 1e12 do
    check !v;
    check (!v *. 1.0000001);
    check (!v *. 0.9999999);
    v := !v *. 1.37
  done;
  List.iter check [ 0.0; -1.0; 1e-300; 1e300; infinity; 1.0; 2.0; 0.5 ];
  (* exact bucket boundaries are inclusive on the right *)
  for i = 0 to M.n_buckets - 2 do
    let u = M.bucket_upper i in
    Alcotest.(check int)
      (Printf.sprintf "upper(%d) maps to its own bucket" i)
      i
      (M.bucket_of_value u);
    Alcotest.(check bool) "uppers strictly increase" true
      (M.bucket_upper (i + 1) > u || i + 1 = M.n_buckets - 1)
  done;
  Alcotest.(check (float 0.0)) "last bucket is +Inf" infinity
    (M.bucket_upper (M.n_buckets - 1))

(* Relative quantile error is bounded by one sub-bucket: the reported
   quantile is the upper bound of the bucket holding the true ranked
   observation, at most 2^(1/16)-1 (~4.4%) above it, never below. *)
let quantile_bounds ~name snap values q =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  let truth = sorted.(min (n - 1) (rank - 1)) in
  let est = M.quantile snap q in
  Alcotest.(check bool)
    (Printf.sprintf "%s q=%.2f: %.17g >= true %.17g" name q est truth)
    true
    (est >= truth -. 1e-12);
  Alcotest.(check bool)
    (Printf.sprintf "%s q=%.2f: %.17g <= true*1.045" name q est)
    true
    (est <= (truth *. 1.0443) +. 1e-12)

(* ----- shard merge across domains under churn ----- *)

let test_merge_across_domains () =
  M.reset ();
  M.enable ();
  let h = M.histogram ~help:"churn" "churn_hist" in
  let c = M.counter "churn_count" in
  let domains = 4 and per = 1000 in
  let value d k = float_of_int ((d * per) + k) /. 997.0 in
  let stop = Atomic.make false in
  (* reader thread: hammer snapshots while writers are mid-flight — the
     merge must never tear (count = sum of bucket counts by
     construction, sum/min/max internally consistent) *)
  let churn =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (match M.histogram_snapshot "churn_hist" with
          | None -> ()
          | Some s ->
            let bucket_total =
              Array.fold_left (fun a (_, c) -> a + c) 0 s.M.buckets
            in
            assert (s.M.count = bucket_total);
            if s.M.count > 0 then assert (s.M.sum >= 0.0));
          ignore (M.get "churn_count");
          ignore (M.dump ())
        done)
      ()
  in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to per - 1 do
              M.record h (value d k);
              M.add c 1
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Thread.join churn;
  let all =
    Array.init (domains * per) (fun i -> value (i / per) (i mod per))
  in
  let snap =
    match M.histogram_snapshot "churn_hist" with
    | Some s -> s
    | None -> Alcotest.fail "histogram vanished"
  in
  Alcotest.(check int) "count merges exactly" (domains * per) snap.M.count;
  Alcotest.(check int) "counter merges exactly" (domains * per)
    (M.get "churn_count");
  let true_sum = Array.fold_left ( +. ) 0.0 all in
  Alcotest.(check bool) "sum merges (up to fp reassociation)" true
    (Float.abs (snap.M.sum -. true_sum) <= 1e-9 *. true_sum);
  Alcotest.(check (float 0.0)) "min is exact" 0.0 snap.M.minv;
  Alcotest.(check (float 0.0)) "max is exact"
    (value (domains - 1) (per - 1))
    snap.M.maxv;
  Alcotest.(check (float 0.0)) "q=1 is the exact max" snap.M.maxv
    (M.quantile snap 1.0);
  List.iter
    (fun q -> quantile_bounds ~name:"churn" snap all q)
    [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99 ]

(* ----- Prometheus exposition ----- *)

(* Golden structure test: families sorted by name, HELP only when help
   text exists, cumulative buckets ending in +Inf, label and help
   escaping, free-form registry names sanitized to the Prometheus
   charset. Bucket bounds come from the geometry API, so the golden is
   byte-exact without hardcoding float strings. *)
let test_prometheus_exposition () =
  M.reset ();
  M.enable ();
  let h = M.histogram ~help:"Latency" "lat_seconds" in
  M.record h 0.001;
  M.record h 0.001;
  M.record h 0.004;
  let ctr =
    M.counter
      ~help:"Total \"requests\"\nserved"
      ("req_total{code=\"" ^ M.prom_escape_label "a\"b\\c" ^ "\"}")
  in
  M.add ctr 3;
  M.set_gauge "g_gauge" 1.5;
  (* a dotted debug name must be sanitized in the exposition *)
  M.incr "pass.canonicalize.runs";
  let le v =
    let u = M.bucket_upper (M.bucket_of_value v) in
    Printf.sprintf "%.9g" u
  in
  let sum = Printf.sprintf "%.17g" (0.001 +. 0.001 +. 0.004) in
  let expected =
    String.concat ""
      [
        "# TYPE g_gauge gauge\n";
        "g_gauge 1.5\n";
        "# HELP lat_seconds Latency\n";
        "# TYPE lat_seconds histogram\n";
        Printf.sprintf "lat_seconds_bucket{le=\"%s\"} 2\n" (le 0.001);
        Printf.sprintf "lat_seconds_bucket{le=\"%s\"} 3\n" (le 0.004);
        "lat_seconds_bucket{le=\"+Inf\"} 3\n";
        "lat_seconds_sum " ^ sum ^ "\n";
        "lat_seconds_count 3\n";
        "# TYPE pass_canonicalize_runs counter\n";
        "pass_canonicalize_runs 1\n";
        "# HELP req_total Total \"requests\"\\nserved\n";
        "# TYPE req_total counter\n";
        "req_total{code=\"a\\\"b\\\\c\"} 3\n";
      ]
  in
  Alcotest.(check string) "exposition golden" expected (M.to_prometheus ());
  M.reset ()

(* A histogram that straddles two shards must expose one merged series
   with cumulative bucket counts. *)
let test_prometheus_merged_histogram () =
  M.reset ();
  M.enable ();
  let h = M.histogram "merged_seconds" in
  M.record h 1.0;
  let d = Domain.spawn (fun () -> M.record h 2.0) in
  Domain.join d;
  let text = M.to_prometheus () in
  Alcotest.(check bool) "one _count with both observations" true
    (let needle = "merged_seconds_count 2\n" in
     let nh = String.length text and nn = String.length needle in
     let rec go i =
       i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
     in
     go 0);
  M.reset ()

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "merge across domains" `Quick
            test_merge_across_domains;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition golden" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "merged histogram" `Quick
            test_prometheus_merged_histogram;
        ] );
    ]
