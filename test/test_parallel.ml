(* Determinism of the domain-parallel UPMEM launch (results, stats and
   profiles must be byte-identical for any job count) and a linearity
   smoke test for the growable-array op storage (a 50k-op block must
   build in far less time than the old quadratic list appends allowed). *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
module T = Types
module Usim = Cinm_upmem_sim
module Pool = Cinm_support.Pool

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)
let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let lower_to_upmem ~cnm_opts f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass ~options:cnm_opts (); Cnm_to_upmem.pass () ]
    m;
  List.hd m.Func.funcs

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

(* Run [f] on a fresh machine with the default pool resized to [jobs];
   returns the result tensors, the machine stats and the host profile. *)
let run_with_jobs ~jobs f args =
  Pool.set_default_jobs jobs;
  let machine = Usim.Machine.create (Usim.Config.default ~dimms:1 ()) in
  let results, profile =
    Interp.run_func ~hooks:[ Usim.Machine.hook machine ] f args
  in
  Pool.set_default_jobs 1;
  (List.map Rtval.as_tensor results, machine.Usim.Machine.stats, profile)

let check_identical_runs ~cnm_opts builder args =
  let f1 = lower_to_upmem ~cnm_opts (builder ()) in
  let f4 = lower_to_upmem ~cnm_opts (builder ()) in
  let r1, s1, p1 = run_with_jobs ~jobs:1 f1 args in
  let r4, s4, p4 = run_with_jobs ~jobs:4 f4 args in
  List.iter2
    (fun a b ->
      if not (Tensor.equal a b) then
        Alcotest.failf "jobs=1 and jobs=4 tensors differ: %s vs %s"
          (Tensor.to_string a) (Tensor.to_string b))
    r1 r4;
  Alcotest.(check bool)
    (Printf.sprintf "stats identical:\n%s\nvs\n%s"
       (Usim.Stats.to_string s1) (Usim.Stats.to_string s4))
    true
    (Usim.Stats.equal s1 s4);
  Alcotest.(check bool) "host profiles identical" true (Profile.equal p1 p4)

let test_determinism_gemm () =
  let a = iota [| 32; 8 |] and b = iota [| 8; 6 |] in
  check_identical_runs
    ~cnm_opts:
      { Cinm_to_cnm.dpus = 8; tasklets = 4; optimize = false;
        max_rows_per_launch = 8 }
    (build_mm 32 8 6)
    [ Rtval.Tensor a; Rtval.Tensor b ]

let test_determinism_gemm_opt () =
  (* WRAM-optimized kernels exercise upmem.wram_shared_alloc, whose
     buffers are per-DPU state under parallel execution *)
  let a = iota [| 32; 16 |] and b = iota [| 16; 8 |] in
  check_identical_runs
    ~cnm_opts:
      { Cinm_to_cnm.dpus = 4; tasklets = 4; optimize = true;
        max_rows_per_launch = 8 }
    (build_mm 32 16 8)
    [ Rtval.Tensor a; Rtval.Tensor b ]

let test_determinism_elementwise () =
  let build () =
    let f =
      Func.create ~name:"va" ~arg_tys:[ tensor [| 256 |]; tensor [| 256 |] ]
        ~result_tys:[ tensor [| 256 |] ]
    in
    let b = Builder.for_func f in
    Func_d.return b [ Linalg_d.add b (Func.param f 0) (Func.param f 1) ];
    f
  in
  let a = iota [| 256 |] and b = iota [| 256 |] in
  check_identical_runs
    ~cnm_opts:
      { Cinm_to_cnm.dpus = 8; tasklets = 2; optimize = false;
        max_rows_per_launch = 8 }
    build
    [ Rtval.Tensor a; Rtval.Tensor b ]

(* With the old [ops @ [op]] storage, inserting n ops walked the list each
   time: 50k inserts cost ~1.25G list cells and took minutes. With Vec
   storage this is linear and finishes in well under a second, so a loose
   CPU-time bound suffices to catch a regression to quadratic appends. *)
let test_linear_insert () =
  let n = 50_000 in
  let f = Func.create ~name:"big" ~arg_tys:[] ~result_tys:[ T.Scalar T.I32 ] in
  let b = Builder.for_func f in
  let t0 = Sys.time () in
  let last = ref (Arith.constant b 0) in
  for i = 1 to n - 1 do
    last := Arith.addi b !last (Arith.constant b i)
  done;
  Func_d.return b [ !last ];
  let elapsed = Sys.time () -. t0 in
  let entry = Ir.entry_block f.Func.body in
  Alcotest.(check bool)
    (Printf.sprintf "built %d ops in %.2fs (bound 5s)" (Ir.num_ops entry) elapsed)
    true (elapsed < 5.0);
  Alcotest.(check int) "all ops present" (2 * (n - 1) + 2) (Ir.num_ops entry)

let () =
  Alcotest.run "parallel"
    [ ( "determinism",
        [ Alcotest.test_case "gemm jobs=1 == jobs=4" `Quick test_determinism_gemm;
          Alcotest.test_case "gemm(wram-opt) jobs=1 == jobs=4" `Quick
            test_determinism_gemm_opt;
          Alcotest.test_case "elementwise jobs=1 == jobs=4" `Quick
            test_determinism_elementwise;
        ] );
      ( "linearity",
        [ Alcotest.test_case "50k-op block builds linearly" `Quick
            test_linear_insert;
        ] );
    ]
