(* The heterogeneous partitioner and the async multi-stream runtime:
   plan determinism (the device schedule is a pure function of the
   module — byte-identical at any job count and for both interpreter
   backends), the overlap-correctness differential (overlapped execution
   must produce bit-identical tensors and machine stats to sequential
   execution, with the merged end-to-end time bounded by the sequential
   sum below and the busiest engine above), and per-rank fault domains
   of the multi-rank UPMEM machine (remaps never leave the failed DPU's
   rank). *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
open Cinm_core
module Sched = Cinm_support.Schedule
module Pool = Cinm_support.Pool
module Fault = Cinm_support.Fault
module Usim = Cinm_upmem_sim
module Msim = Cinm_memristor_sim
module Camsim = Cinm_cam_sim
module Benchmark = Cinm_benchmarks.Benchmark
module Hetero = Cinm_benchmarks.Hetero_kernels

let () = Registry.ensure_all ()

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

(* the same shape the hetero smoke configuration uses: 4 ranks, 2 DIMMs,
   8 DPUs per DIMM -> 64 DPUs *)
let backend = Backend.default_hetero ~ranks:4 ~dimms:2 ~dpus_per_dimm:8 ()

let hetero_configs () =
  match backend with Backend.Hetero (u, ci) -> (u, ci) | _ -> assert false

(* ----- partition determinism ----- *)

(* Full fingerprint of a plan: every assignment with device, stream,
   transfer bytes and cost estimates. Any nondeterminism in the HEFT
   scheduler shows up here. *)
let plan_fingerprint (plan : Partition.plan) =
  String.concat "\n"
    (List.mapi
       (* position, not raw oid: the oid counter is global, so two builds
          of the same function get different ids for identical ops *)
       (fun i (a : Partition.assignment) ->
         Printf.sprintf "%s#%d -> %s@%d xfer=%d est=%.12e span=%.12e..%.12e"
           a.Partition.a_op i a.Partition.a_device a.Partition.a_stream
           a.Partition.a_xfer_in_bytes a.Partition.a_est_s a.Partition.a_start_s
           a.Partition.a_finish_s)
       plan.Partition.assignments)
  ^ Printf.sprintf "\nmakespan=%.12e seq=%.12e" plan.Partition.est_makespan_s
      plan.Partition.est_sequential_s

let plan_of (b : Benchmark.t) =
  let m = Func.create_module () in
  Func.add_func m (b.Benchmark.build ());
  Pass.run_pipeline [ Tosa_to_linalg.pass; Linalg_to_cinm.pass ] m;
  let u, ci = hetero_configs () in
  let policy =
    {
      Partition.default_policy with
      Partition.upmem_dpus =
        u.Backend.ranks * u.Backend.dimms * u.Backend.dpus_per_dimm;
      cim_rows = ci.Backend.rows;
      cim_cols = ci.Backend.cols;
    }
  in
  Partition.plan_module policy m

let test_plan_determinism () =
  List.iter
    (fun (b : Benchmark.t) ->
      let reference = plan_fingerprint (plan_of b) in
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": plan uses more than one device")
        true
        (List.length
           (List.filter (fun (_, n) -> n > 0) (plan_of b).Partition.per_device)
        > 1);
      List.iter
        (fun jobs ->
          Pool.set_default_jobs jobs;
          List.iter
            (fun interp ->
              Compile.set_backend interp;
              let fp = plan_fingerprint (plan_of b) in
              Compile.set_backend Compile.Tree;
              Alcotest.(check string)
                (Printf.sprintf "%s: plan identical at jobs=%d" b.Benchmark.name
                   jobs)
                reference fp)
            [ Compile.Tree; Compile.Compiled ])
        [ 1; 4 ];
      Pool.set_default_jobs 1)
    [ Hetero.mix (); Hetero.batch () ]

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* the recorded "partition" fattr must match the plan summary *)
let test_partition_fattr () =
  let b = Hetero.mix () in
  let compiled = Driver.compile_func backend (b.Benchmark.build ()) in
  let f = List.hd compiled.Driver.modul.Func.funcs in
  match List.assoc_opt "partition" f.Func.fattrs with
  | Some (Attr.Str s) ->
    Alcotest.(check bool)
      (Printf.sprintf "fattr names devices and speedup: %S" s)
      true
      (String.length s > 0
      && String.contains s '='
      && contains_substring s "est_speedup")
  | _ -> Alcotest.fail "partitioned function must carry the partition fattr"

(* ----- overlap-correctness differential ----- *)

let fresh_machines () =
  let u, ci = hetero_configs () in
  {
    Stream_exec.upmem = Usim.Machine.create ~faults:None (Driver.upmem_sim_config u);
    memristor =
      Msim.Machine.create ~faults:None
        {
          (Msim.Config.default ~tiles:ci.Backend.tiles ()) with
          Msim.Config.rows = ci.Backend.rows;
          cols = ci.Backend.cols;
        };
    cam = Camsim.Cam_machine.create (Camsim.Cam_machine.default_config ());
  }

let host_cost p =
  (Cinm_cpu_sim.Model.estimate Cinm_cpu_sim.Model.arm_inorder p)
    .Cinm_cpu_sim.Model.time_s

let run_stream ~sequential ~jobs (b : Benchmark.t) =
  Pool.set_default_jobs jobs;
  let compiled = Driver.compile_func backend (b.Benchmark.build ()) in
  let machines = fresh_machines () in
  let f = List.hd compiled.Driver.modul.Func.funcs in
  let outcome =
    Stream_exec.run ~modul:compiled.Driver.modul ~sequential ~host_cost
      ~machines f
      (b.Benchmark.inputs ())
  in
  Pool.set_default_jobs 1;
  (outcome, machines)

let test_overlap_differential () =
  List.iter
    (fun (b : Benchmark.t) ->
      let seq, seq_m = run_stream ~sequential:true ~jobs:1 b in
      let ovl, ovl_m = run_stream ~sequential:false ~jobs:4 b in
      (* overlapped execution is a scheduling change only: tensors must
         be bit-identical to the sequential run *)
      List.iter2
        (fun a c ->
          check_tensor
            (b.Benchmark.name ^ ": overlapped == sequential tensors")
            (Rtval.as_tensor a) (Rtval.as_tensor c))
        seq.Stream_exec.results ovl.Stream_exec.results;
      (* ... and so must every machine's stats ... *)
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": upmem stats identical")
        true
        (Usim.Stats.equal seq_m.Stream_exec.upmem.Usim.Machine.stats
           ovl_m.Stream_exec.upmem.Usim.Machine.stats);
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": memristor stats identical")
        true
        (seq_m.Stream_exec.memristor.Msim.Machine.stats
        = ovl_m.Stream_exec.memristor.Msim.Machine.stats);
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": cam stats identical")
        true
        (seq_m.Stream_exec.cam.Camsim.Cam_machine.stats
        = ovl_m.Stream_exec.cam.Camsim.Cam_machine.stats);
      (* ... and the schedule summary, which is a pure function of the
         event logs *)
      let ss = seq.Stream_exec.summary and os = ovl.Stream_exec.summary in
      Alcotest.(check (float 0.0))
        (b.Benchmark.name ^ ": e2e independent of execution mode")
        ss.Sched.e2e_s os.Sched.e2e_s;
      Alcotest.(check (float 0.0))
        (b.Benchmark.name ^ ": seq sum independent of execution mode")
        ss.Sched.seq_s os.Sched.seq_s;
      (* the two-clock merge invariants: busiest engine <= overlapped
         critical path <= sequential sum *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: e2e (%.3e) <= sequential sum (%.3e)"
           b.Benchmark.name os.Sched.e2e_s os.Sched.seq_s)
        true
        (os.Sched.e2e_s <= os.Sched.seq_s +. 1e-12);
      Alcotest.(check bool)
        (Printf.sprintf "%s: e2e (%.3e) >= busiest engine (%.3e)"
           b.Benchmark.name os.Sched.e2e_s os.Sched.max_channel_busy_s)
        true
        (os.Sched.e2e_s >= os.Sched.max_channel_busy_s -. 1e-12);
      (* the per-machine tracks bound the makespan too *)
      List.iter
        (fun (t : Sched.track) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s busy <= e2e" b.Benchmark.name
               t.Sched.tr_machine)
            true
            (t.Sched.tr_compute_s +. t.Sched.tr_dma_s
            <= os.Sched.e2e_s +. 1e-12))
        os.Sched.tracks;
      (* the timeline replay places every event within the makespan *)
      List.iter
        (fun (p : Sched.placed) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: placed event within makespan"
               b.Benchmark.name)
            true
            (p.Sched.p_start_s >= 0.0
            && p.Sched.p_finish_s <= os.Sched.e2e_s +. 1e-12))
        (Sched.timeline ovl.Stream_exec.schedule))
    [ Hetero.mix (); Hetero.batch () ]

(* end to end through the driver: device results must match the host
   reference, and het-mix must genuinely overlap (the whole point) *)
let test_hetero_end_to_end () =
  List.iter
    (fun (b : Benchmark.t) ->
      let results, report =
        Driver.compile_and_run backend (b.Benchmark.build ())
          (b.Benchmark.inputs ())
      in
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": hetero results match host reference")
        true
        (Benchmark.results_match b results);
      let ovl = List.assoc "e2e_overlapped" report.Report.breakdown in
      let seq = List.assoc "e2e_sequential" report.Report.breakdown in
      Alcotest.(check bool)
        (Printf.sprintf "%s: overlap speedup %.2fx >= 1.5x" b.Benchmark.name
           (seq /. ovl))
        true
        (seq /. ovl >= 1.5);
      Alcotest.(check bool)
        (b.Benchmark.name ^ ": report carries per-machine tracks")
        true
        (List.length report.Report.tracks >= 2))
    [ Hetero.mix (); Hetero.batch () ]

(* ----- per-rank fault domains of the multi-rank UPMEM machine ----- *)

let tensor shape = Types.Tensor (shape, Types.I32)
let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let lower_to_upmem ~dpus f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass
        ~options:
          { Cinm_to_cnm.dpus; tasklets = 4; optimize = false;
            max_rows_per_launch = 8 }
        ();
      Cnm_to_upmem.pass () ]
    m;
  List.hd m.Func.funcs

let test_rank_fault_domains () =
  let ranks = 4 and dpus_per_dimm = 8 in
  let config =
    {
      (Usim.Config.default ~ranks ~dimms:1 ()) with
      Usim.Config.dpus_per_dimm;
    }
  in
  let dpus = Usim.Config.total_dpus config in
  let args = [ Rtval.Tensor (iota [| 64; 8 |]); Rtval.Tensor (iota [| 8; 6 |]) ] in
  let run ~faults ~jobs =
    Pool.set_default_jobs jobs;
    let machine = Usim.Machine.create ~faults config in
    let results, _ =
      Interp.run_func
        ~hooks:[ Usim.Machine.hook machine ]
        (lower_to_upmem ~dpus (build_mm 64 8 6 ()))
        args
    in
    Pool.set_default_jobs 1;
    (List.map Rtval.as_tensor results, machine)
  in
  let clean, _ = run ~faults:None ~jobs:1 in
  (* seed 7 at 10% fails a DPU in two different ranks while leaving every
     rank enough spares (each shard has 2) to stay allocatable *)
  let faults =
    Some (Fault.make ~seed:7 { Fault.no_rates with Fault.dpu_fail = 0.1 })
  in
  let r1, m1 = run ~faults ~jobs:1 in
  let r4, m4 = run ~faults ~jobs:4 in
  List.iter2 (check_tensor "multi-rank faulted == fault-free") clean r1;
  List.iter2 (check_tensor "multi-rank faulted: jobs=1 == jobs=4") r1 r4;
  Alcotest.(check bool) "stats identical at any job count" true
    (Usim.Stats.equal m1.Usim.Machine.stats m4.Usim.Machine.stats);
  Alcotest.(check bool)
    (Printf.sprintf "a 25%% failure rate masks some DPUs (%d)"
       m1.Usim.Machine.stats.Usim.Stats.failed_dpus)
    true
    (m1.Usim.Machine.stats.Usim.Stats.failed_dpus > 0);
  (* the spare cursors must stay inside their rank's physical shard:
     rank r owns [r * per_rank, (r+1) * per_rank) and a cursor that
     walked below its shard's base would mean a remap crossed into
     another rank's fault domain *)
  let rd = Usim.Config.rank_dpus config in
  let per_rank = rd + max 2 (rd / 4) in
  Array.iteri
    (fun r cursor ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d spare cursor %d stays in shard [%d, %d)" r
           cursor
           ((r * per_rank) - 1)
           ((r + 1) * per_rank))
        true
        (cursor >= (r * per_rank) - 1 && cursor < (r + 1) * per_rank))
    m1.Usim.Machine.spare_cursors

let () =
  Alcotest.run "partition"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic across jobs and interps" `Quick
            test_plan_determinism;
          Alcotest.test_case "partition fattr recorded" `Quick
            test_partition_fattr;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "differential vs sequential" `Quick
            test_overlap_differential;
          Alcotest.test_case "end to end through the driver" `Quick
            test_hetero_end_to_end;
        ] );
      ( "faults",
        [
          Alcotest.test_case "per-rank fault domains" `Quick
            test_rank_fault_domains;
        ] );
    ]
