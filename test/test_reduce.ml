(* Tests for the robustness tool-chain: crash reproducers written by the
   pass manager, replay from the reproducer header, the per-pass wall-time
   budget, strict-mode gating, and the cinm-reduce delta-debugger. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
module Reduce = Cinm_reduce_lib.Reduce
module T = Types

let () = Registry.ensure_all ()

let tensor shape = T.Tensor (shape, T.I32)

(* A deliberately bloated module (>= 50 ops): one cinm.gemm — the op
   debug-fail-on-gemm trips on — buried in a pile of irrelevant index
   arithmetic and a second pure-noise function. *)
let build_bloated_module () =
  let m = Func.create_module () in
  let f =
    Func.create ~name:"victim"
      ~arg_tys:[ tensor [| 16; 8 |]; tensor [| 8; 12 |] ]
      ~result_tys:[ tensor [| 16; 12 |] ]
  in
  let b = Builder.for_func f in
  let acc = ref (Arith.const_index b 0) in
  for i = 1 to 24 do
    let c = Arith.const_index b i in
    acc := Arith.addi b !acc c
  done;
  let out = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ out ];
  Func.add_func m f;
  let g = Func.create ~name:"noise" ~arg_tys:[ T.Index ] ~result_tys:[ T.Index ] in
  let b = Builder.for_func g in
  let acc = ref (Func.param g 0) in
  for _ = 1 to 10 do
    acc := Arith.addi b !acc !acc
  done;
  Func_d.return b [ !acc ];
  Func.add_func m g;
  m

let failing_pipeline () = [ Pass_registry.debug_fail_on_gemm ]

let diag_class (d : Pass.diag) =
  d.Pass.pass ^ ":" ^ Option.value d.Pass.op ~default:"-"

let pipeline_diag m =
  match Pass.run_pipeline_result (failing_pipeline ()) (Reduce.clone_module m) with
  | Ok () -> None
  | Error d -> Some d

(* ----- crash reproducers ----- *)

let with_reproducer_dir dir f =
  Pass.set_reproducer_dir (Some dir);
  Fun.protect ~finally:(fun () -> Pass.set_reproducer_dir None) f

let test_reproducer_written_and_replays () =
  let m = build_bloated_module () in
  let dir = "repro_out" in
  let diag =
    with_reproducer_dir dir (fun () ->
        match Pass.run_pipeline_result (failing_pipeline ()) m with
        | Ok () -> Alcotest.fail "seeded pipeline unexpectedly succeeded"
        | Error d -> d)
  in
  Alcotest.(check string) "failing pass" "debug-fail-on-gemm" diag.Pass.pass;
  let repro =
    match Pass.last_reproducer () with
    | Some r -> r
    | None -> Alcotest.fail "no reproducer recorded"
  in
  Alcotest.(check bool) "file exists" true (Sys.file_exists repro.Pass.path);
  Alcotest.(check (list string))
    "recorded pipeline" [ "debug-fail-on-gemm" ] repro.Pass.pipeline;
  (* replay exactly as cinm_opt --run-reproducer does: header names the
     pipeline, the body re-parses, and the failure reproduces verbatim *)
  let text = In_channel.with_open_text repro.Pass.path In_channel.input_all in
  let names =
    match Pass.reproducer_pipeline_of_text text with
    | Some names -> names
    | None -> Alcotest.fail "reproducer has no pipeline header"
  in
  let passes =
    match Pass_registry.resolve names with
    | Ok passes -> passes
    | Error name -> Alcotest.failf "reproducer names unknown pass %S" name
  in
  let m' = Parser.parse_module_text text in
  (match Pass.run_pipeline_result passes m' with
  | Ok () -> Alcotest.fail "replay did not reproduce the failure"
  | Error d ->
    Alcotest.(check string) "same diagnostic" (Pass.diag_to_string diag)
      (Pass.diag_to_string d))

let test_reproducer_not_written_when_disabled () =
  Pass.set_reproducer_dir None;
  let before = Pass.last_reproducer () in
  let m = build_bloated_module () in
  (match Pass.run_pipeline_result (failing_pipeline ()) m with
  | Ok () -> Alcotest.fail "seeded pipeline unexpectedly succeeded"
  | Error _ -> ());
  let same =
    match (before, Pass.last_reproducer ()) with
    | None, None -> true
    | Some a, Some b -> a.Pass.path = b.Pass.path
    | _ -> false
  in
  Alcotest.(check bool) "no new reproducer" true same

(* ----- per-pass wall-time budget ----- *)

let test_pass_budget_exceeded () =
  Pass.set_pass_budget_s (Some 0.0);
  Fun.protect
    ~finally:(fun () -> Pass.set_pass_budget_s None)
    (fun () ->
      let m = build_bloated_module () in
      let nop = Pass.create ~name:"nop" (fun _ -> ()) in
      match Pass.run_one_result nop m with
      | Ok () -> Alcotest.fail "expected a budget failure"
      | Error d ->
        Alcotest.(check string) "failing pass" "nop" d.Pass.pass;
        Alcotest.(check bool) "names the budget" true
          (let s = d.Pass.message in
           let rec mem i =
             i + 16 <= String.length s
             && (String.sub s i 16 = "wall-time budget" || mem (i + 1))
           in
           mem 0))

(* ----- strict mode gating ----- *)

let test_strict_forces_verification () =
  (* an invalid module slips through ~verify:false normally, but not under
     CINM_STRICT *)
  let broken () =
    let m = Func.create_module () in
    let f = Func.create ~name:"bad" ~arg_tys:[] ~result_tys:[] in
    let b = Builder.for_func f in
    Builder.build0 b "bogus.op";
    Func_d.return b [];
    Func.add_func m f;
    m
  in
  let nop = Pass.create ~name:"nop" (fun _ -> ()) in
  let was = Pass.strict_enabled () in
  Fun.protect
    ~finally:(fun () -> Pass.set_strict was)
    (fun () ->
      Pass.set_strict false;
      (match Pass.run_one_result ~verify:false nop (broken ()) with
      | Ok () -> ()
      | Error d ->
        Alcotest.failf "unexpected failure with strict off: %s" (Pass.diag_to_string d));
      Pass.set_strict true;
      match Pass.run_one_result ~verify:false nop (broken ()) with
      | Ok () -> Alcotest.fail "strict mode did not verify"
      | Error _ -> ())

(* ----- cinm-reduce ----- *)

let test_reduce_shrinks_preserving_failure () =
  Pass.set_reproducer_dir None;
  let m = build_bloated_module () in
  let ops_before = Pass.count_ops m in
  Alcotest.(check bool) "module is >= 50 ops" true (ops_before >= 50);
  let cls =
    match pipeline_diag m with
    | Some d -> diag_class d
    | None -> Alcotest.fail "seeded module is not failing"
  in
  let interesting c =
    Verifier.verify_module c = []
    && (match pipeline_diag c with Some d -> diag_class d = cls | None -> false)
  in
  let reduced, stats = Reduce.reduce ~interesting m in
  Alcotest.(check int) "stats.ops_before" ops_before stats.Reduce.ops_before;
  Alcotest.(check int) "stats.ops_after" (Pass.count_ops reduced) stats.Reduce.ops_after;
  (* the acceptance bar: at least an 80% reduction *)
  Alcotest.(check bool)
    (Printf.sprintf "shrank >= 80%% (%d -> %d)" stats.Reduce.ops_before
       stats.Reduce.ops_after)
    true
    (stats.Reduce.ops_after * 5 <= stats.Reduce.ops_before);
  (* ... while still failing the same way *)
  (match pipeline_diag reduced with
  | Some d -> Alcotest.(check string) "failure class preserved" cls (diag_class d)
  | None -> Alcotest.fail "reduced module no longer fails");
  Alcotest.(check int) "reduced module verifies" 0
    (List.length (Verifier.verify_module reduced));
  (* and the reduced artifact still round-trips through the printer *)
  let text = Printer.module_to_string reduced in
  Alcotest.(check string) "reduced IR is printable/parsable" text
    (Printer.module_to_string (Parser.parse_module_text text))

let test_reduce_collapses_live_chains () =
  (* the fuzz generator's checksum idiom: a gemm whose digest is folded
     through a long accumulator chain into the returned value. Every link
     is live, so only the operand-forwarding move can shorten the path —
     constant replacement would sever the gemm from the return. *)
  Pass.set_reproducer_dir None;
  let m = Func.create_module () in
  let f =
    Func.create ~name:"chain" ~arg_tys:[ tensor [| 2; 2 |]; tensor [| 2; 2 |] ]
      ~result_tys:[ T.Scalar T.I32 ]
  in
  let b = Builder.for_func f in
  let g = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  let acc = ref (Cinm_d.reduce b ~op:"add" g) in
  for i = 1 to 40 do
    acc := Arith.addi b !acc (Arith.constant b ~ty:(T.Scalar T.I32) i)
  done;
  Func_d.return b [ !acc ];
  Func.add_func m f;
  let ops_before = Pass.count_ops m in
  (* interesting = a cinm.gemm still feeds the module (textually), the
     same shape as the fuzzer's injected-bug shrink predicate *)
  let interesting c =
    Verifier.verify_module c = []
    && (let t = Printer.module_to_string c in
        let n = String.length t in
        let rec mem i =
          i + 9 <= n && (String.sub t i 9 = "cinm.gemm" || mem (i + 1))
        in
        mem 0)
  in
  let reduced, stats = Reduce.reduce ~interesting m in
  Alcotest.(check bool)
    (Printf.sprintf "chain collapsed >= 80%% (%d -> %d)" ops_before
       stats.Reduce.ops_after)
    true
    (stats.Reduce.ops_after * 5 <= ops_before);
  Alcotest.(check bool) "gemm survives" true (interesting reduced)

(* ----- cinm_reduce execution-differential modes (CLI) ----- *)

(* locate the reducer binary relative to this test binary, so the test
   works under both `dune runtest` (cwd test/) and `dune exec` (cwd root) *)
let reduce_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "cinm_reduce.exe"))

let run_reduce_cli args input_text =
  let dir = Filename.temp_file "cinm-reduce-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let in_path = Filename.concat dir "in.mlir" in
  Out_channel.with_open_text in_path (fun oc -> output_string oc input_text);
  let err_path = Filename.concat dir "err.txt" in
  let cmd =
    Printf.sprintf "%s %s %s > /dev/null 2> %s"
      (Filename.quote reduce_exe) args (Filename.quote in_path)
      (Filename.quote err_path)
  in
  let rc = Sys.command cmd in
  let err = In_channel.with_open_text err_path In_channel.input_all in
  (rc, err)

let healthy_module_text =
  {|module {
  func.func @main(%arg0: tensor<4x4xi32>, %arg1: tensor<4x4xi32>) -> (i32) {
    %0 = "cinm.gemm"(%arg0, %arg1) : (tensor<4x4xi32>, tensor<4x4xi32>) -> (tensor<4x4xi32>)
    %1 = "cinm.reduce"(%0) {op = "add"} : (tensor<4x4xi32>) -> (i32)
    "func.return"(%1) : (i32) -> ()
  }
}
|}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_exec_backend_agreement_is_not_interesting () =
  (* a healthy module: the device backends agree with the reference, so
     each differential mode must refuse to reduce — proving it really ran
     the two executions and compared them *)
  List.iter
    (fun args ->
      let rc, err = run_reduce_cli args healthy_module_text in
      Alcotest.(check int) (args ^ ": exits 1") 1 rc;
      Alcotest.(check bool)
        (args ^ ": reports agreement, got: " ^ err)
        true
        (contains err "input is not interesting"))
    [ "--exec-backend upmem"; "--exec-backend hetero"; "--exec-faults" ]

let test_exec_backend_rejects_unknown () =
  let rc, err = run_reduce_cli "--exec-backend warp-drive" healthy_module_text in
  Alcotest.(check int) "exits 1" 1 rc;
  Alcotest.(check bool) ("names the backend, got: " ^ err) true
    (contains err "unknown backend")

let test_reduce_keeps_interesting_input_intact () =
  (* reduction of an already-minimal module is the identity *)
  Pass.set_reproducer_dir None;
  let m = Func.create_module () in
  let f =
    Func.create ~name:"tiny" ~arg_tys:[ tensor [| 2; 2 |]; tensor [| 2; 2 |] ]
      ~result_tys:[ tensor [| 2; 2 |] ]
  in
  let b = Builder.for_func f in
  let out = Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
  Func_d.return b [ out ];
  Func.add_func m f;
  let cls =
    match pipeline_diag m with
    | Some d -> diag_class d
    | None -> Alcotest.fail "tiny module is not failing"
  in
  let interesting c =
    Verifier.verify_module c = []
    && (match pipeline_diag c with Some d -> diag_class d = cls | None -> false)
  in
  let reduced, stats = Reduce.reduce ~interesting m in
  Alcotest.(check int) "cannot drop the gemm or the return" 2 stats.Reduce.ops_after;
  match pipeline_diag reduced with
  | Some d -> Alcotest.(check string) "failure class preserved" cls (diag_class d)
  | None -> Alcotest.fail "reduced module no longer fails"

let () =
  Alcotest.run "reduce"
    [
      ( "reproducers",
        [
          Alcotest.test_case "written and replays" `Quick test_reproducer_written_and_replays;
          Alcotest.test_case "disabled by default" `Quick
            test_reproducer_not_written_when_disabled;
        ] );
      ( "pass budget",
        [ Alcotest.test_case "over budget fails" `Quick test_pass_budget_exceeded ] );
      ( "strict mode",
        [ Alcotest.test_case "forces verification" `Quick test_strict_forces_verification ] );
      ( "reducer",
        [
          Alcotest.test_case "shrinks >= 80%" `Quick test_reduce_shrinks_preserving_failure;
          Alcotest.test_case "collapses live accumulator chains" `Quick
            test_reduce_collapses_live_chains;
          Alcotest.test_case "minimal input is a fixpoint" `Quick
            test_reduce_keeps_interesting_input_intact;
        ] );
      ( "exec differentials",
        [
          Alcotest.test_case "agreement is not interesting" `Quick
            test_exec_backend_agreement_is_not_interesting;
          Alcotest.test_case "unknown backend rejected" `Quick
            test_exec_backend_rejects_unknown;
        ] );
    ]
