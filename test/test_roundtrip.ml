(* Round-trip property test: print -> parse -> print must be a fixpoint
   for every textual fixture and for every benchmark-built module at every
   stage of every backend pipeline. Catches printer/parser drift the
   moment a dialect grows an attribute or type the other side mishandles
   (the same property CINM_STRICT=1 asserts after each pass in
   production). *)

open Cinm_ir
open Cinm_core
open Cinm_benchmarks

let () = Cinm_dialects.Registry.ensure_all ()

let check_fixpoint ctx text =
  let m =
    match Parser.parse_module_text text with
    | m -> m
    | exception Parser.Parse_error e ->
      Alcotest.failf "%s: printed IR failed to re-parse: %s" ctx
        (Parser.error_to_string e)
  in
  Alcotest.(check string) (ctx ^ ": print->parse->print fixpoint") text
    (Printer.module_to_string m)

let check_module_fixpoint ctx m = check_fixpoint ctx (Printer.module_to_string m)

(* ----- textual fixtures ----- *)

let test_fixture_fixpoints () =
  (* resolve next to the test binary so both `dune runtest` (cwd test/)
     and `dune exec` (cwd root) find the fixture copies *)
  let dir = Filename.concat (Filename.dirname Sys.executable_name) "fixtures" in
  let fixtures =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mlir")
    |> List.sort compare
  in
  Alcotest.(check bool) "found fixtures" true (fixtures <> []);
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      let text = In_channel.with_open_text path In_channel.input_all in
      (* the first print normalizes fixture whitespace/comments; from
         there on the text must be stable *)
      check_module_fixpoint file (Parser.parse_module_text text))
    fixtures

(* ----- pinned special values (fuzzer-found printer/parser gaps) ----- *)

(* Build a module exercising every float special the fuzzer injects and
   both signed extremes of the narrow int widths; the text must be a
   print->parse->print fixpoint AND the reparsed constants must be
   bit-identical (NaN payloads and -0.0 signs survive, compare-based
   equality would lie about both). *)
let test_special_float_attrs () =
  let m = Func.create_module () in
  let f = Func.create ~name:"specials" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let specials = [ Float.nan; Float.infinity; Float.neg_infinity; -0.0; 0.0;
                   1.5e-300; -3.25 ] in
  List.iter (fun v -> ignore (Cinm_dialects.Arith.constant_f b v)) specials;
  Cinm_dialects.Func_d.return b [];
  Func.add_func m f;
  check_module_fixpoint "float specials" m;
  let m2 = Parser.parse_module_text (Printer.module_to_string m) in
  let consts fn =
    let acc = ref [] in
    Func.walk
      (fun op ->
        if op.Ir.name = "arith.constant" then
          acc := Ir.float_attr op "value" :: !acc)
      fn;
    List.rev !acc
  in
  List.iter2
    (fun orig reparsed ->
      Alcotest.(check int64)
        (Printf.sprintf "float %h bit-identical after round-trip" orig)
        (Int64.bits_of_float orig)
        (Int64.bits_of_float reparsed))
    specials
    (consts (List.hd m2.Func.funcs))

let test_narrow_int_attrs () =
  let m = Func.create_module () in
  let f = Func.create ~name:"narrow" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  let cases =
    [ (Types.I8, -128); (Types.I8, 127); (Types.I8, -1);
      (Types.I16, -32768); (Types.I16, 32767) ]
  in
  List.iter
    (fun (dt, v) ->
      ignore (Cinm_dialects.Arith.constant b ~ty:(Types.Scalar dt) v))
    cases;
  Cinm_dialects.Func_d.return b [];
  Func.add_func m f;
  check_module_fixpoint "i8/i16 boundary constants" m;
  let m2 = Parser.parse_module_text (Printer.module_to_string m) in
  let acc = ref [] in
  Func.walk
    (fun op ->
      if op.Ir.name = "arith.constant" then acc := Ir.int_attr op "value" :: !acc)
    (List.hd m2.Func.funcs);
  List.iter2
    (fun (_, v) got ->
      Alcotest.(check int)
        (Printf.sprintf "boundary %d preserved" v)
        v got)
    cases (List.rev !acc)

(* ----- benchmark modules through every pipeline stage ----- *)

let backends =
  [
    ("cpu", Backend.Host_xeon);
    ("upmem", Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ()));
    ("upmem-opt",
     Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ~optimize:true ()));
    ("cim", Backend.Cim (Backend.default_cim ()));
  ]

let stage_fixpoints bench_name backend_name backend (build : unit -> Func.t) =
  let m = Func.create_module () in
  Func.add_func m (build ());
  let ctx stage = Printf.sprintf "%s/%s %s" bench_name backend_name stage in
  check_module_fixpoint (ctx "initial") m;
  (* run the pipeline a pass at a time, asserting the fixpoint after each
     stage; a pass failure is a legitimate unsupported-lowering case (the
     driver falls back to the CPU for those), not a round-trip bug *)
  ignore
    (List.for_all
       (fun (p : Pass.t) ->
         match Pass.run_one_result p m with
         | Ok () ->
           check_module_fixpoint (ctx ("after " ^ p.Pass.pass_name)) m;
           true
         | Error _ -> false)
       (Driver.pipeline backend))

let bench_tests () =
  let benches = Suites.ml_suite () @ Suites.prim_suite () in
  List.concat_map
    (fun (b : Benchmark.t) ->
      List.map
        (fun (backend_name, backend) ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" b.Benchmark.name backend_name)
            `Quick
            (fun () ->
              stage_fixpoints b.Benchmark.name backend_name backend
                b.Benchmark.build))
        backends)
    benches

(* ----- strict mode end to end ----- *)

let test_strict_pipeline () =
  (* CINM_STRICT's own round-trip assertion must hold over a full device
     lowering: run the whole upmem pipeline in strict mode *)
  let m = Func.create_module () in
  let f =
    let tensor shape = Types.Tensor (shape, Types.I32) in
    let f =
      Func.create ~name:"mm" ~arg_tys:[ tensor [| 8; 8 |]; tensor [| 8; 8 |] ]
        ~result_tys:[ tensor [| 8; 8 |] ]
    in
    let b = Builder.for_func f in
    let out = Cinm_dialects.Cinm_d.gemm b (Func.param f 0) (Func.param f 1) in
    Cinm_dialects.Func_d.return b [ out ];
    f
  in
  Func.add_func m f;
  let was = Pass.strict_enabled () in
  Fun.protect
    ~finally:(fun () -> Pass.set_strict was)
    (fun () ->
      Pass.set_strict true;
      let backend =
        Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:4 ~tasklets:4 ())
      in
      match Pass.run_pipeline_result (Driver.pipeline backend) m with
      | Ok () -> ()
      | Error d -> Alcotest.failf "strict pipeline failed: %s" (Pass.diag_to_string d))

let () =
  Alcotest.run "roundtrip"
    [
      ("fixtures", [ Alcotest.test_case "fixpoint" `Quick test_fixture_fixpoints ]);
      ( "special values",
        [
          Alcotest.test_case "nan/inf/-0.0 float attrs" `Quick
            test_special_float_attrs;
          Alcotest.test_case "i8/i16 boundary attrs" `Quick
            test_narrow_int_attrs;
        ] );
      ("pipeline stages", bench_tests ());
      ("strict mode", [ Alcotest.test_case "full upmem pipeline" `Quick test_strict_pipeline ]);
    ]
