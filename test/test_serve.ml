(* Tests for the serve stack: the JSON codec, the protocol decoder, the
   pipeline cache, pool task submission/shutdown, and the daemon itself
   end-to-end over a real Unix socket (in-process server thread, client
   threads). *)

module Json = Cinm_serve_lib.Json
module Protocol = Cinm_serve_lib.Protocol
module Cache = Cinm_serve_lib.Cache
module Catalog = Cinm_serve_lib.Catalog
module Server = Cinm_serve_lib.Server
module Client = Cinm_serve_lib.Client
module Pool = Cinm_support.Pool
module Config = Cinm_support.Config

(* ----- json ----- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2,3]";
      "{\"a\":1,\"b\":[true,null,\"x\"],\"c\":{\"d\":-2.5}}";
      "\"\\\"quoted\\\" and \\\\ and \\n\"";
      "-17";
    ]
  in
  List.iter
    (fun src ->
      let j = Json.parse src in
      let printed = Json.to_string j in
      Alcotest.(check string)
        (Printf.sprintf "fixpoint of %s" src)
        printed
        (Json.to_string (Json.parse printed)))
    cases

let test_json_values () =
  let j = Json.parse "{\"s\":\"hi\",\"i\":42,\"f\":2.5,\"b\":true,\"n\":null}" in
  Alcotest.(check (option string)) "string" (Some "hi") (Json.string_field j "s");
  Alcotest.(check (option int)) "int" (Some 42) (Json.int_field j "i");
  Alcotest.(check (option bool)) "bool" (Some true) (Json.bool_field j "b");
  Alcotest.(check (option (float 0.0))) "float" (Some 2.5) (Json.float_field j "f");
  (* ints coerce to float, nothing else does *)
  Alcotest.(check (option (float 0.0))) "int as float" (Some 42.0)
    (Json.float_field j "i");
  Alcotest.(check (option string)) "absent" None (Json.string_field j "zz");
  Alcotest.(check (option string)) "null is absent" None (Json.string_field j "n")

let test_json_errors () =
  let expect_error src pred name =
    match Json.parse src with
    | _ -> Alcotest.fail (name ^ ": expected a parse error")
    | exception Json.Parse_error e ->
      if not (pred e) then
        Alcotest.fail
          (Printf.sprintf "%s: got %s at %d:%d" name e.Json.message e.Json.line
             e.Json.col)
  in
  expect_error "{\"a\": nope}" (fun e -> e.Json.line = 1 && e.Json.col = 7)
    "bad literal position";
  expect_error "{\"a\": 1,}" (fun _ -> true) "trailing comma";
  expect_error "[1, 2" (fun _ -> true) "unterminated list";
  expect_error "\"abc" (fun _ -> true) "unterminated string";
  expect_error "{} trailing" (fun _ -> true) "trailing garbage";
  expect_error "{\n \"a\": @\n}" (fun e -> e.Json.line = 2) "line tracking";
  (* the caret context points at the offending column, parser-style *)
  expect_error "{\"x\": !}"
    (fun e -> e.Json.context <> "" && String.contains e.Json.context '^')
    "caret context"

(* ----- protocol ----- *)

let decode_exn line =
  match Protocol.decode (Json.parse line) with
  | Ok r -> r
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_protocol_decode () =
  let r = decode_exn "{\"op\":\"health\"}" in
  Alcotest.(check string) "op" "health" (Protocol.op_name r.Protocol.op);
  let r =
    decode_exn
      "{\"op\":\"run\",\"benchmark\":\"va\",\"id\":\"x\",\"max_steps\":9,\
       \"strict\":true,\"deadline_s\":1.5,\"repeats\":3}"
  in
  Alcotest.(check (option string)) "id" (Some "x") r.Protocol.id;
  Alcotest.(check string) "bench" "va" r.Protocol.benchmark;
  Alcotest.(check string) "default backend" "upmem" r.Protocol.backend;
  Alcotest.(check (option int)) "max_steps" (Some 9) r.Protocol.max_steps;
  Alcotest.(check (option bool)) "strict" (Some true) r.Protocol.strict;
  Alcotest.(check int) "repeats" 3 r.Protocol.repeats;
  Alcotest.(check bool) "fallback default" true r.Protocol.fallback

let test_protocol_reject () =
  let expect_err line name =
    match Protocol.decode (Json.parse line) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": expected a decode error")
  in
  expect_err "{}" "missing op";
  expect_err "{\"op\":1}" "mistyped op";
  expect_err "{\"op\":\"fly\"}" "unknown op";
  expect_err "{\"op\":\"run\"}" "run without benchmark";
  expect_err "{\"op\":\"run\",\"benchmark\":\"va\",\"backend\":\"gpu\"}"
    "unknown backend";
  expect_err "{\"op\":\"run\",\"benchmark\":\"va\",\"interp\":\"jit\"}"
    "unknown interp";
  expect_err "{\"op\":\"run\",\"benchmark\":\"va\",\"max_steps\":-1}"
    "negative max_steps";
  expect_err "{\"op\":\"run\",\"benchmark\":\"va\",\"deadline_s\":0}"
    "zero deadline";
  expect_err "{\"op\":\"bench\",\"benchmark\":\"va\",\"repeats\":0}"
    "zero repeats";
  expect_err "{\"op\":\"run\",\"benchmark\":\"va\",\"strict\":\"yes\"}"
    "mistyped strict"

(* ----- pipeline cache ----- *)

let test_cache_fifo () =
  let bench =
    match Catalog.find "va" with Some b -> b | None -> Alcotest.fail "no va"
  in
  let compiled =
    Cinm_core.Driver.compile_func Cinm_core.Backend.Host_xeon
      (bench.Cinm_benchmarks.Benchmark.build ())
  in
  let key n = { Cache.benchmark = n; backend = "host"; strict = false } in
  let c = Cache.create ~capacity:2 () in
  Cache.add c (key "a") compiled;
  Cache.add c (key "b") compiled;
  Alcotest.(check bool) "a cached" true (Cache.find c (key "a") <> None);
  Cache.add c (key "c") compiled;
  (* FIFO: "a" was oldest *)
  Alcotest.(check bool) "a evicted" true (Cache.find c (key "a") = None);
  Alcotest.(check bool) "b kept" true (Cache.find c (key "b") <> None);
  Alcotest.(check bool) "c kept" true (Cache.find c (key "c") <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "entries" 2 s.Cache.entries;
  (* a degraded artifact must never be cached *)
  let degraded =
    {
      compiled with
      Cinm_core.Driver.fallback =
        Some { Cinm_ir.Pass.pass = "p"; op = None; message = "forced" };
    }
  in
  Cache.add c (key "d") degraded;
  Alcotest.(check bool) "degraded not cached" true (Cache.find c (key "d") = None);
  Cache.invalidate c;
  Alcotest.(check int) "invalidated" 0 (Cache.stats c).Cache.entries

(* ----- pool tasks ----- *)

let test_pool_tasks () =
  let p = Pool.create ~jobs:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "accepted" true
      (Pool.submit p (fun () -> Atomic.incr hits))
  done;
  (* a raising task is contained, not fatal to its worker *)
  Alcotest.(check bool) "raising task accepted" true
    (Pool.submit p (fun () -> failwith "contained"));
  (* shutdown is the drain barrier: every accepted task ran *)
  Pool.shutdown p;
  Alcotest.(check int) "all tasks ran" 50 (Atomic.get hits);
  Alcotest.(check int) "nothing pending" 0 (Pool.pending p);
  Alcotest.(check bool) "rejected after shutdown" false
    (Pool.submit p (fun () -> Atomic.incr hits));
  (* idempotent *)
  Pool.shutdown p;
  Alcotest.(check int) "no stragglers" 50 (Atomic.get hits);
  (* a parallel-for still works (sequentially) after shutdown *)
  let sum = Atomic.make 0 in
  Pool.run p 10 (fun i -> ignore (Atomic.fetch_and_add sum i));
  Alcotest.(check int) "post-shutdown run" 45 (Atomic.get sum)

(* ----- the daemon, end to end ----- *)

let fresh_socket () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cinm-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  path

let with_daemon ?(opts_f = fun o -> o) f =
  let socket = fresh_socket () in
  let opts = opts_f (Server.default_opts ~socket_path:socket ()) in
  let opts = { opts with Server.socket_path = socket; jobs = 2 } in
  let srv = Server.create opts in
  let thread = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect ~attempts:5 socket with
      | c ->
        (try ignore (Client.request c (Client.make_request "shutdown"))
         with Client.Server_gone _ -> ());
        Client.close c
      | exception _ -> ());
      Thread.join thread)
    (fun () -> f socket)

let code_of resp =
  match Json.member "error" resp with
  | Some err -> Json.string_field err "code"
  | None -> None

let test_daemon_basics () =
  with_daemon (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let h = Client.request c (Client.make_request "health") in
          Alcotest.(check (option bool)) "health ok" (Some true)
            (Json.bool_field h "ok");
          Alcotest.(check (option string)) "status" (Some "ok")
            (Json.string_field h "status");
          (* run: first compile misses the pipeline cache, second hits *)
          let r1 =
            Client.request c (Client.make_request ~benchmark:"sel" "run")
          in
          Alcotest.(check (option bool)) "run ok" (Some true)
            (Json.bool_field r1 "ok");
          Alcotest.(check (option string)) "cold" (Some "miss")
            (Json.string_field r1 "cache");
          Alcotest.(check (option bool)) "not degraded" (Some false)
            (Json.bool_field r1 "degraded");
          let r2 =
            Client.request c (Client.make_request ~benchmark:"sel" "run")
          in
          Alcotest.(check (option string)) "warm" (Some "hit")
            (Json.string_field r2 "cache");
          (* per-request interpreter backends coexist *)
          let rt =
            Client.request c
              (Client.make_request ~benchmark:"sel" ~interp:"tree" "run")
          in
          Alcotest.(check (option bool)) "tree ok" (Some true)
            (Json.bool_field rt "ok");
          (* identical modelled time whichever interpreter executed it *)
          Alcotest.(check (option (float 0.0))) "same simulated time"
            (Json.float_field r1 "sim_total_s")
            (Json.float_field rt "sim_total_s");
          (* compile op and strict compile *)
          let co =
            Client.request c
              (Client.make_request ~benchmark:"mm" ~strict:true "compile")
          in
          Alcotest.(check (option bool)) "strict compile ok" (Some true)
            (Json.bool_field co "ok");
          Alcotest.(check bool) "ops counted" true
            (match Json.int_field co "ops" with Some n -> n > 0 | None -> false);
          (* stats reflect the traffic *)
          let st = Client.request c (Client.make_request "stats") in
          Alcotest.(check bool) "served some" true
            (match Json.int_field st "served" with
            | Some n -> n >= 5
            | None -> false)))

let test_daemon_errors () =
  with_daemon
    ~opts_f:(fun o -> { o with Server.max_request_bytes = 4096 })
    (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let expect_code line code name =
            let resp = Json.parse (Client.request_raw c line) in
            Alcotest.(check (option bool)) (name ^ " not ok") (Some false)
              (Json.bool_field resp "ok");
            Alcotest.(check (option string)) (name ^ " code") (Some code)
              (code_of resp)
          in
          expect_code "{\"op\": nope}" "parse_error" "malformed";
          (* parse errors carry line/col context *)
          let resp = Json.parse (Client.request_raw c "{\"op\": nope}") in
          (match Json.member "error" resp with
          | Some err ->
            Alcotest.(check (option int)) "line" (Some 1)
              (Json.int_field err "line");
            Alcotest.(check bool) "col" true (Json.int_field err "col" <> None)
          | None -> Alcotest.fail "no error object");
          expect_code "{\"op\":\"fly\"}" "bad_request" "unknown op";
          expect_code "{\"op\":\"run\",\"benchmark\":\"zzz\"}"
            "unknown_benchmark" "unknown benchmark";
          expect_code
            "{\"op\":\"run\",\"benchmark\":\"va\",\"faults\":\"bogus=1\"}"
            "bad_request" "bad fault spec";
          (* oversized line: structured shed + stream resync, not a close *)
          expect_code (String.make 9000 'x') "oversized" "oversized";
          let h = Client.request c (Client.make_request "health") in
          Alcotest.(check (option bool)) "alive after oversized" (Some true)
            (Json.bool_field h "ok");
          (* watchdog: per-request step budget *)
          expect_code
            "{\"op\":\"run\",\"benchmark\":\"va\",\"max_steps\":5}" "watchdog"
            "watchdog";
          (* deadline: already expired at admission *)
          expect_code
            "{\"op\":\"run\",\"benchmark\":\"va\",\"deadline_s\":1e-9}"
            "deadline_exceeded" "deadline";
          (* the daemon is still healthy after all of the failures *)
          let r = Client.request c (Client.make_request ~benchmark:"va" "run") in
          Alcotest.(check (option bool)) "still serving" (Some true)
            (Json.bool_field r "ok")))

let test_daemon_degraded_and_reproducer () =
  let repro_dir = Filename.temp_file "cinm-serve-repro" "" in
  Unix.unlink repro_dir;
  Unix.mkdir repro_dir 0o755;
  with_daemon
    ~opts_f:(fun o ->
      {
        o with
        Server.base_config =
          {
            (Config.default ()) with
            Config.reproducer_dir = Some repro_dir;
          };
      })
    (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* injected DPU faults: the request survives, marked degraded *)
          let r =
            Client.request c
              (Client.make_request ~benchmark:"va" ~faults:"dpu_fail=0.2" "run")
          in
          Alcotest.(check (option bool)) "faulted run ok" (Some true)
            (Json.bool_field r "ok");
          Alcotest.(check (option bool)) "degraded" (Some true)
            (Json.bool_field r "degraded");
          Alcotest.(check bool) "dpus failed" true
            (match Json.int_field r "failed_dpus" with
            | Some n -> n > 0
            | None -> false);
          (* identical fault plan => bit-identical modelled time *)
          let r2 =
            Client.request c
              (Client.make_request ~benchmark:"va" ~faults:"dpu_fail=0.2" "run")
          in
          Alcotest.(check (option (float 0.0))) "deterministic faults"
            (Json.float_field r "sim_total_s")
            (Json.float_field r2 "sim_total_s");
          (* an over-budget pass is a pass failure with a crash reproducer
             attached (fallback would re-lower under the same budget, so
             ask for none) *)
          let pf =
            Client.request c
              (Client.make_request ~benchmark:"mm" ~pass_budget_s:1e-9
                 ~fallback:false "run")
          in
          Alcotest.(check (option bool)) "over budget fails" (Some false)
            (Json.bool_field pf "ok");
          Alcotest.(check (option string)) "pass_failed" (Some "pass_failed")
            (code_of pf);
          (match Json.member "error" pf with
          | Some err -> (
            match Json.string_field err "reproducer" with
            | Some path ->
              Alcotest.(check bool) "reproducer exists" true (Sys.file_exists path)
            | None -> Alcotest.fail "no reproducer path in error detail")
          | None -> Alcotest.fail "no error object")))

(* Concurrent clients with *different* per-request configs: watchdogged
   requests trip, unbounded ones succeed — configs never bleed across
   requests sharing the pool. *)
let test_daemon_concurrent_configs () =
  with_daemon (fun socket ->
      let n_threads = 6 and per = 5 in
      let failures = Array.make n_threads "" in
      let threads =
        List.init n_threads (fun k ->
            Thread.create
              (fun () ->
                try
                  let c = Client.connect ~attempts:40 socket in
                  Fun.protect
                    ~finally:(fun () -> Client.close c)
                    (fun () ->
                      for _ = 1 to per do
                        if k mod 2 = 0 then begin
                          let r =
                            Client.request c
                              (Client.make_request ~benchmark:"va" "run")
                          in
                          if Json.bool_field r "ok" <> Some true then
                            failures.(k) <- "expected ok, got " ^ Json.to_string r
                        end
                        else begin
                          let r =
                            Client.request c
                              (Client.make_request ~benchmark:"va" ~max_steps:5
                                 "run")
                          in
                          if code_of r <> Some "watchdog" then
                            failures.(k) <-
                              "expected watchdog, got " ^ Json.to_string r
                        end
                      done)
                with e -> failures.(k) <- Printexc.to_string e)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun k msg -> if msg <> "" then Alcotest.fail
              (Printf.sprintf "thread %d: %s" k msg))
        failures)

let test_daemon_admission_and_shutdown () =
  with_daemon
    ~opts_f:(fun o -> { o with Server.max_inflight = 1 })
    (fun socket ->
      (* saturate the single slot from one connection, then probe from
         another: with one in-flight slot and a slow request occupying
         it, the probe must be shed as overloaded *)
      let slow = Client.connect ~attempts:40 socket in
      let probe = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () ->
          Client.close slow;
          Client.close probe)
        (fun () ->
          (* occupy the slot: send without reading the response *)
          let bench_req =
            Json.to_string
              (Client.make_request ~benchmark:"mm" ~repeats:8 "bench")
          in
          let t = Thread.create (fun () -> Client.request_raw slow bench_req) () in
          Unix.sleepf 0.2;
          let shed = ref false in
          (* the slot may free between probes; insist at least one probe
             lands while it is taken *)
          for _ = 1 to 20 do
            if not !shed then begin
              let r =
                Client.request probe (Client.make_request ~benchmark:"va" "run")
              in
              if code_of r = Some "overloaded" then shed := true
            end
          done;
          Alcotest.(check bool) "load was shed" true !shed;
          Thread.join t));
  (* after with_daemon: shutdown completed and unlinked the socket *)
  ()

let test_daemon_shutdown_rejects () =
  let socket = fresh_socket () in
  let opts = Server.default_opts ~socket_path:socket () in
  let srv = Server.create { opts with Server.jobs = 2 } in
  let thread = Thread.create Server.run srv in
  let c = Client.connect ~attempts:40 socket in
  let r = Client.request c (Client.make_request "shutdown") in
  Alcotest.(check (option string)) "draining" (Some "draining")
    (Json.string_field r "status");
  Client.close c;
  Thread.join thread;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

(* ----- telemetry: metrics op, req_id correlation, trace capture ----- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_daemon_metrics_endpoint () =
  with_daemon (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.request c (Client.make_request ~benchmark:"sel" "run"));
          ignore (Client.request c (Client.make_request ~benchmark:"sel" "run"));
          let m = Client.request c (Client.make_request "metrics") in
          Alcotest.(check (option bool)) "metrics ok" (Some true)
            (Json.bool_field m "ok");
          let hist =
            match Json.member "histograms" m with
            | Some hs -> Json.member "cinm_serve_request_seconds" hs
            | None -> None
          in
          (match hist with
          | None -> Alcotest.fail "no cinm_serve_request_seconds histogram"
          | Some h ->
            Alcotest.(check bool) "latency histogram counted both runs" true
              (match Json.int_field h "count" with
              | Some n -> n >= 2
              | None -> false);
            Alcotest.(check bool) "p95 covers p50" true
              (match (Json.float_field h "p50", Json.float_field h "p95") with
              | Some p50, Some p95 -> p95 >= p50 && p50 > 0.0
              | _ -> false));
          (match Json.member "counters" m with
          | Some (Json.Obj fields) ->
            Alcotest.(check bool) "ok responses counted" true
              (match List.assoc_opt "cinm_serve_responses_total{code=\"ok\"}" fields with
              | Some (Json.Int n) -> n >= 2
              | _ -> false);
            Alcotest.(check bool) "pipeline cache hit counted" true
              (match
                 List.assoc_opt "cinm_serve_pipeline_cache_hits_total" fields
               with
              | Some (Json.Int n) -> n >= 1
              | _ -> false)
          | _ -> Alcotest.fail "no counters object");
          (match Json.member "gauges" m with
          | Some (Json.Obj fields) ->
            Alcotest.(check bool) "uptime gauge present" true
              (List.mem_assoc "cinm_serve_uptime_seconds" fields)
          | _ -> Alcotest.fail "no gauges object")))

let test_daemon_req_id () =
  with_daemon (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rid resp = Json.string_field resp "req_id" in
          let r1 = Client.request c (Client.make_request ~benchmark:"va" "run") in
          let r2 = Client.request c (Client.make_request "health") in
          (* error responses carry the id too, even protocol errors *)
          let r3 =
            Client.request c (Client.make_request ~benchmark:"no-such" "run")
          in
          let r4 = Json.parse (Client.request_raw c "{\"op\": nope") in
          let ids = List.map rid [ r1; r2; r3; r4 ] in
          List.iteri
            (fun i id ->
              Alcotest.(check bool)
                (Printf.sprintf "response %d has a req_id" i)
                true
                (match id with Some s -> s <> "" | None -> false))
            ids;
          let distinct = List.sort_uniq compare ids in
          Alcotest.(check int) "req_ids are unique per request" 4
            (List.length distinct)))

let test_daemon_trace_isolation () =
  with_daemon (fun socket ->
      (* two clients concurrently tracing different benchmarks: each
         capture must contain its own serve span and never the other's,
         even though both run on the same worker pool *)
      let traces = Array.make 2 "" in
      let worker idx bench =
        Thread.create
          (fun () ->
            let c = Client.connect ~attempts:40 socket in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for _ = 1 to 3 do
                  let r =
                    Client.request c
                      (Client.make_request ~benchmark:bench ~trace:true "run")
                  in
                  Alcotest.(check (option bool))
                    (bench ^ " traced run ok")
                    (Some true) (Json.bool_field r "ok");
                  match Json.string_field r "trace" with
                  | Some t -> traces.(idx) <- t
                  | None -> Alcotest.fail (bench ^ ": no trace in response")
                done))
          ()
      in
      let t1 = worker 0 "va" and t2 = worker 1 "hst-l" in
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check bool) "va trace has its serve span" true
        (contains traces.(0) "run:va");
      Alcotest.(check bool) "va trace is isolated" false
        (contains traces.(0) "run:hst-l");
      Alcotest.(check bool) "hst-l trace has its serve span" true
        (contains traces.(1) "run:hst-l");
      Alcotest.(check bool) "hst-l trace is isolated" false
        (contains traces.(1) "run:va");
      (* untraced requests must not pay for (or carry) a capture *)
      let c = Client.connect ~attempts:40 socket in
      let r = Client.request c (Client.make_request ~benchmark:"va" "run") in
      Client.close c;
      Alcotest.(check bool) "no trace field without trace:true" true
        (Json.member "trace" r = None))

let test_daemon_trace_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cinm-traces-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  with_daemon
    ~opts_f:(fun o -> { o with Server.trace_dir = Some dir })
    (fun socket ->
      let c = Client.connect ~attempts:40 socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let r =
            Client.request c
              (Client.make_request ~benchmark:"sel" ~trace:true "run")
          in
          Alcotest.(check bool) "trace not inlined with --trace-dir" true
            (Json.member "trace" r = None);
          match Json.string_field r "trace_path" with
          | None -> Alcotest.fail "no trace_path in response"
          | Some path ->
            Alcotest.(check bool) "trace file exists" true
              (Sys.file_exists path);
            let ic = open_in path in
            let len = in_channel_length ic in
            let body = really_input_string ic len in
            close_in ic;
            (* a parseable trace document naming this benchmark *)
            ignore (Json.parse body);
            Alcotest.(check bool) "trace file has the serve span" true
              (contains body "run:sel");
            Sys.remove path))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_values;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "decode" `Quick test_protocol_decode;
          Alcotest.test_case "reject" `Quick test_protocol_reject;
        ] );
      ("cache", [ Alcotest.test_case "fifo" `Quick test_cache_fifo ]);
      ("pool", [ Alcotest.test_case "tasks" `Quick test_pool_tasks ]);
      ( "daemon",
        [
          Alcotest.test_case "basics" `Quick test_daemon_basics;
          Alcotest.test_case "errors" `Quick test_daemon_errors;
          Alcotest.test_case "degraded+reproducer" `Quick
            test_daemon_degraded_and_reproducer;
          Alcotest.test_case "concurrent configs" `Quick
            test_daemon_concurrent_configs;
          Alcotest.test_case "admission+shutdown" `Quick
            test_daemon_admission_and_shutdown;
          Alcotest.test_case "shutdown rejects" `Quick
            test_daemon_shutdown_rejects;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics endpoint" `Quick
            test_daemon_metrics_endpoint;
          Alcotest.test_case "req_id correlation" `Quick test_daemon_req_id;
          Alcotest.test_case "trace isolation" `Quick
            test_daemon_trace_isolation;
          Alcotest.test_case "trace dir" `Quick test_daemon_trace_dir;
        ] );
    ]
