(* Pinned unit tests for strict Tensor.equal (dtype and shape first,
   NaN-aware float comparison) and for the unboxed narrow payloads'
   wrap-on-store semantics. *)

open Cinm_ir
open Cinm_interp
module T = Types

let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

(* ----- strict equality ----- *)

let test_equal_dtype_strict () =
  let a = Tensor.of_int_array ~dtype:T.I32 [| 4 |] [| 1; 2; 3; 4 |] in
  let b = Tensor.of_int_array ~dtype:T.I64 [| 4 |] [| 1; 2; 3; 4 |] in
  check_bool "same data, different dtype is not equal" false (Tensor.equal a b);
  check_bool "copy is equal" true (Tensor.equal a (Tensor.copy a))

let test_equal_shape_strict () =
  let a = Tensor.of_int_array [| 4 |] [| 1; 2; 3; 4 |] in
  let b = Tensor.of_int_array [| 2; 2 |] [| 1; 2; 3; 4 |] in
  check_bool "same data, different shape is not equal" false (Tensor.equal a b)

let test_equal_narrow_payloads () =
  let a = Tensor.of_int_array ~dtype:T.I8 [| 3 |] [| 1; -2; 127 |] in
  let b = Tensor.of_int_array ~dtype:T.I8 [| 3 |] [| 1; -2; 127 |] in
  check_bool "i8 payloads equal" true (Tensor.equal a b);
  let c = Tensor.of_int_array ~dtype:T.I16 [| 3 |] [| 1; -2; 127 |] in
  check_bool "i8 vs i16 with same values is not equal" false (Tensor.equal a c);
  Tensor.set_int b 1 (-3);
  check_bool "i8 payloads with one differing byte" false (Tensor.equal a b)

let test_equal_nan_aware () =
  let mk v = Tensor.of_float_array [| 3 |] [| 1.0; v; 3.0 |] in
  check_bool "NaN equals NaN positionally" true
    (Tensor.equal (mk Float.nan) (mk Float.nan));
  check_bool "NaN does not equal a number" false
    (Tensor.equal (mk Float.nan) (mk 2.0));
  check_bool "0.0 equals -0.0" true (Tensor.equal (mk 0.0) (mk (-0.0)))

(* ----- wrap-on-store of the unboxed narrow payloads ----- *)

let test_i8_wrap_pinned () =
  let t = Tensor.init ~dtype:T.I8 [| 4 |] (fun i -> 126 + i) in
  check_ints "i8 wraps at +128"
    [ 126; 127; -128; -127 ]
    (Array.to_list (Tensor.to_int_array t));
  let u = Tensor.init ~dtype:T.I8 [| 4 |] (fun i -> -126 - i) in
  check_ints "i8 wraps at -129"
    [ -126; -127; -128; 127 ]
    (Array.to_list (Tensor.to_int_array u));
  Tensor.set_int t 0 330;
  Alcotest.(check int) "i8 store 330 reads back 74" 74 (Tensor.get_int t 0);
  Tensor.set_int t 0 (-130);
  Alcotest.(check int) "i8 store -130 reads back 126" 126 (Tensor.get_int t 0)

let test_i16_wrap_pinned () =
  let t = Tensor.init ~dtype:T.I16 [| 4 |] (fun i -> 32766 + i) in
  check_ints "i16 wraps at +32768"
    [ 32766; 32767; -32768; -32767 ]
    (Array.to_list (Tensor.to_int_array t));
  Tensor.set_int t 0 40000;
  Alcotest.(check int) "i16 store 40000 reads back -25536" (-25536)
    (Tensor.get_int t 0);
  Tensor.set_int t 0 (-32769);
  Alcotest.(check int) "i16 store -32769 reads back 32767" 32767
    (Tensor.get_int t 0)

let test_wrap_function_pinned () =
  Alcotest.(check int) "wrap i8 128" (-128) (Tensor.wrap T.I8 128);
  Alcotest.(check int) "wrap i8 -129" 127 (Tensor.wrap T.I8 (-129));
  Alcotest.(check int) "wrap i16 32768" (-32768) (Tensor.wrap T.I16 32768);
  Alcotest.(check int) "wrap i32 2^31" (-2147483648) (Tensor.wrap T.I32 2147483648);
  Alcotest.(check int) "wrap i1 3" 1 (Tensor.wrap T.I1 3);
  Alcotest.(check int) "wrap i64 is identity" max_int (Tensor.wrap T.I64 max_int)

let () =
  Alcotest.run "tensor"
    [
      ( "equal",
        [
          Alcotest.test_case "dtype strict" `Quick test_equal_dtype_strict;
          Alcotest.test_case "shape strict" `Quick test_equal_shape_strict;
          Alcotest.test_case "narrow payloads" `Quick test_equal_narrow_payloads;
          Alcotest.test_case "nan aware" `Quick test_equal_nan_aware;
        ] );
      ( "wrap",
        [
          Alcotest.test_case "i8 pinned" `Quick test_i8_wrap_pinned;
          Alcotest.test_case "i16 pinned" `Quick test_i16_wrap_pinned;
          Alcotest.test_case "wrap function" `Quick test_wrap_function_pinned;
        ] );
    ]
