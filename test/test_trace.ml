(* Tests for the unified tracing & metrics layer (Cinm_support.Trace /
   Log): Perfetto-shaped JSON export, bit-identical simulated-time tracks
   across job counts, per-pattern rewrite hit counting, reports
   unperturbed by tracing, failing-pass spans, and the leveled logger. *)

open Cinm_ir
open Cinm_dialects
open Cinm_transforms
open Cinm_interp
open Cinm_core
module Trace = Cinm_support.Trace
module Log = Cinm_support.Log
module Fault = Cinm_support.Fault
module Pool = Cinm_support.Pool
module Usim = Cinm_upmem_sim
module T = Types

let () = Registry.ensure_all ()

(* Every test leaves the global tracer the way it found it: off, empty. *)
let with_tracing f =
  Trace.clear ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ();
      Trace.Metrics.disable ();
      Trace.Metrics.reset ())
    f

(* ----- a minimal JSON parser (no JSON library in the tree) ----- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
          (* keep the escape verbatim; the tests never inspect these *)
          Buffer.add_string b "\\u"
        | Some c -> Buffer.add_char b c
        | None -> fail "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ----- fixtures ----- *)

let tensor shape = T.Tensor (shape, T.I32)
let iota shape = Tensor.init shape (fun i -> (i mod 23) - 11)

let build_mm m k n () =
  let f =
    Func.create ~name:"mm" ~arg_tys:[ tensor [| m; k |]; tensor [| k; n |] ]
      ~result_tys:[ tensor [| m; n |] ]
  in
  let b = Builder.for_func f in
  Func_d.return b [ Linalg_d.matmul b (Func.param f 0) (Func.param f 1) ];
  f

let force_cnm =
  Target_select.pass
    ~policy:{ Target_select.default_policy with forced_target = Some "cnm" }
    ()

let lower_to_upmem f =
  let m = Func.create_module () in
  Func.add_func m f;
  Pass.run_pipeline
    [ Tosa_to_linalg.pass; Linalg_to_cinm.pass; force_cnm;
      Cinm_to_cnm.pass
        ~options:
          { Cinm_to_cnm.dpus = 8; tasklets = 4; optimize = false;
            max_rows_per_launch = 8 }
        ();
      Cnm_to_upmem.pass () ]
    m;
  List.hd m.Func.funcs

let mm_args () = [ Rtval.Tensor (iota [| 32; 8 |]); Rtval.Tensor (iota [| 8; 6 |]) ]

(* ----- JSON export shape ----- *)

let test_json_shape () =
  with_tracing @@ fun () ->
  let _ =
    Driver.compile_and_run
      (Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:4 ()))
      (build_mm 32 8 6 ()) (mm_args ())
  in
  let json = parse_json (Trace.to_json_string ()) in
  let events =
    match member "traceEvents" json with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let num k e =
    match member k e with
    | Some (Num f) -> f
    | _ -> Alcotest.failf "event missing numeric %S" k
  in
  let str k e =
    match member k e with
    | Some (Str s) -> s
    | _ -> Alcotest.failf "event missing string %S" k
  in
  let spans = ref 0 and pass_spans = ref 0 and lane_tracks = ref [] in
  List.iter
    (fun e ->
      (* the Perfetto-required shape: every event has pid/tid/ph, and
         every timed event (span/instant) a timestamp *)
      ignore (num "pid" e);
      ignore (num "tid" e);
      match str "ph" e with
      | "X" ->
        incr spans;
        ignore (num "ts" e);
        ignore (num "dur" e);
        let name = str "name" e in
        if String.length name >= 5 && String.sub name 0 5 = "pass:" then
          incr pass_spans;
        if member "cat" e = Some (Str "lane") then
          lane_tracks := num "tid" e :: !lane_tracks
      | "i" ->
        ignore (num "ts" e);
        if member "s" e <> Some (Str "t") then
          Alcotest.fail "instant event missing thread scope"
      | "M" -> ()
      | ph -> Alcotest.failf "unexpected event phase %S" ph)
    events;
  Alcotest.(check bool) "has complete spans" true (!spans > 0);
  (* one span per pipeline pass: the upmem pipeline has 8 passes *)
  Alcotest.(check int) "one span per pipeline pass" 8 !pass_spans;
  (* one lane span per simulated DPU *)
  Alcotest.(check int) "per-DPU lane tracks" 8
    (List.length (List.sort_uniq compare !lane_tracks));
  let process_names =
    List.filter_map
      (fun e ->
        if member "name" e = Some (Str "process_name") then
          Option.bind (member "args" e) (member "name")
        else None)
      events
  in
  Alcotest.(check bool) "host process registered" true
    (List.mem (Str "host (wall clock)") process_names);
  Alcotest.(check bool) "device process registered" true
    (List.exists
       (function Str s -> String.length s >= 5 && String.sub s 0 5 = "upmem" | _ -> false)
       process_names)

(* ----- simulated-time track is bit-identical across --jobs ----- *)

let test_device_track_determinism () =
  let faults = Fault.make ~seed:7 { Fault.no_rates with Fault.dpu_transient = 0.08 } in
  let run ~jobs =
    Trace.clear ();
    Trace.enable ();
    Pool.set_default_jobs jobs;
    let machine =
      Usim.Machine.create ~faults:(Some faults) (Usim.Config.default ~dimms:1 ())
    in
    let f = lower_to_upmem (build_mm 32 8 6 ()) in
    let _ = Interp.run_func ~hooks:[ Usim.Machine.hook machine ] f (mm_args ()) in
    Pool.set_default_jobs 1;
    let evs =
      List.map
        (fun (e : Trace.event) ->
          (* pids are allocated per machine instance; everything else on
             the device track must match bit for bit *)
          (e.Trace.ev_name, e.Trace.cat, e.Trace.ph, e.Trace.track,
           e.Trace.ts, e.Trace.dur))
        (Trace.device_events ())
    in
    Trace.disable ();
    Trace.clear ();
    evs
  in
  let e1 = run ~jobs:1 in
  let e4 = run ~jobs:4 in
  Alcotest.(check bool) "device events non-empty" true (e1 <> []);
  Alcotest.(check bool) "device track has fault instants" true
    (List.exists (fun (_, cat, ph, _, _, _) -> cat = "fault" && ph = 'i') e1);
  Alcotest.(check bool) "device track identical for jobs 1 vs 4" true (e1 = e4)

(* ----- per-pattern rewrite hit counts ----- *)

let test_pattern_hits () =
  with_tracing @@ fun () ->
  Trace.Metrics.enable ();
  let f = Func.create ~name:"t" ~arg_tys:[] ~result_tys:[] in
  let b = Builder.for_func f in
  (* hand-counted op mix: 3 nops, 2 others, 1 survivor *)
  for _ = 1 to 3 do
    Builder.insert b (Ir.create_op "test.nop")
  done;
  for _ = 1 to 2 do
    Builder.insert b (Ir.create_op "test.other")
  done;
  Builder.insert b (Ir.create_op "test.keep");
  Func_d.return b [];
  let m = Func.create_module () in
  Func.add_func m f;
  let erase name : Rewrite.pattern =
   fun _ctx op -> if op.Ir.name = name then Some Rewrite.Erase else None
  in
  let pass = Pass.of_patterns ~name:"test-erase" [ erase "test.nop"; erase "test.other" ] in
  (* the synthetic test.* ops are unregistered, so keep strict mode (which
     forces verification even with ~verify:false) out of this run *)
  let was = Pass.strict_enabled () in
  Pass.set_strict false;
  Fun.protect
    ~finally:(fun () -> Pass.set_strict was)
    (fun () ->
      match Pass.run_one_result ~verify:false pass m with
      | Ok () -> ()
      | Error d -> Alcotest.failf "pass failed: %s" (Pass.diag_to_string d));
  Alcotest.(check int) "pattern0 hits" 3
    (Trace.Metrics.get "rewrite.test-erase.pattern0");
  Alcotest.(check int) "pattern1 hits" 2
    (Trace.Metrics.get "rewrite.test-erase.pattern1");
  (* the pass span carries the same counts and the op delta *)
  let span =
    List.find
      (fun (e : Trace.event) -> e.Trace.ev_name = "pass:test-erase")
      (Trace.events ())
  in
  Alcotest.(check bool) "span pattern0_hits arg" true
    (List.mem ("pattern0_hits", Trace.Int 3) span.Trace.args);
  Alcotest.(check bool) "span pattern1_hits arg" true
    (List.mem ("pattern1_hits", Trace.Int 2) span.Trace.args);
  Alcotest.(check bool) "span ops_delta arg" true
    (List.mem ("ops_delta", Trace.Int (-5)) span.Trace.args)

(* ----- tracing does not perturb reports ----- *)

let test_report_unperturbed () =
  Trace.disable ();
  Trace.clear ();
  let backend =
    Backend.Upmem (Backend.default_upmem ~dimms:1 ~dpus_per_dimm:8 ~tasklets:4 ())
  in
  let _, off = Driver.compile_and_run backend (build_mm 32 8 6 ()) (mm_args ()) in
  let _, on =
    with_tracing @@ fun () ->
    Driver.compile_and_run backend (build_mm 32 8 6 ()) (mm_args ())
  in
  (* the traced run derives its breakdown from the trace; it must be
     bit-identical to the stats-derived one (same floats, same order) *)
  Alcotest.(check bool) "breakdown identical" true
    (off.Report.breakdown = on.Report.breakdown);
  Alcotest.(check bool) "device time identical" true
    (off.Report.device_s = on.Report.device_s);
  Alcotest.(check bool) "counters identical" true
    (off.Report.counters = on.Report.counters)

let test_cim_report_unperturbed () =
  Trace.disable ();
  Trace.clear ();
  let backend = Backend.Cim (Backend.default_cim ~min_writes:true ~parallel:true ()) in
  let _, off = Driver.compile_and_run backend (build_mm 32 8 6 ()) (mm_args ()) in
  let _, on =
    with_tracing @@ fun () ->
    Driver.compile_and_run backend (build_mm 32 8 6 ()) (mm_args ())
  in
  Alcotest.(check bool) "cim breakdown identical" true
    (off.Report.breakdown = on.Report.breakdown);
  Alcotest.(check bool) "cim device time identical" true
    (off.Report.device_s = on.Report.device_s)

(* ----- a failing pass still gets its span, with the diag attached ----- *)

let test_failing_pass_span () =
  with_tracing @@ fun () ->
  let pass =
    Pass.create ~name:"exploding" (fun _ -> invalid_arg "deliberate failure")
  in
  let m = Func.create_module () in
  (match Pass.run_one_result ~verify:false pass m with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected the pass to fail");
  match
    List.find_opt
      (fun (e : Trace.event) -> e.Trace.ev_name = "pass:exploding")
      (Trace.events ())
  with
  | None -> Alcotest.fail "no span for the failing pass"
  | Some span ->
    Alcotest.(check bool) "span carries the error" true
      (List.exists
         (function
           | "error", Trace.Str msg ->
             (* the diag mentions the pass and the message *)
             let has sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
               in
               go 0
             in
             has "exploding" && has "deliberate failure"
           | _ -> false)
         span.Trace.args);
    Alcotest.(check bool) "wall time recorded" true (span.Trace.dur >= 0.0)

(* ----- tracing off is a no-op ----- *)

let test_disabled_noop () =
  Trace.disable ();
  Trace.clear ();
  Trace.complete ~clock:Trace.Host ~pid:Trace.host_pid ~track:"x" ~ts:0.0
    ~dur:1.0 "ignored";
  Trace.instant ~clock:Trace.Host ~pid:Trace.host_pid ~track:"x" ~ts:0.0 "ignored";
  Trace.Metrics.incr "ignored";
  Alcotest.(check int) "no events collected" 0 (List.length (Trace.events ()));
  Alcotest.(check int) "no metrics collected" 0 (Trace.Metrics.get "ignored")

(* ----- leveled logger ----- *)

let test_log_levels () =
  let seen = ref [] in
  Log.set_sink (Some (fun level msg -> seen := (level, msg) :: !seen));
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      Log.set_level Log.Warn)
  @@ fun () ->
  Log.set_level Log.Warn;
  Log.debug "d%d" 1;
  Log.info "i%d" 2;
  Log.warn "w%d" 3;
  Alcotest.(check int) "only warn passes at level warn" 1 (List.length !seen);
  Alcotest.(check bool) "warn text" true (List.mem (Log.Warn, "w3") !seen);
  Log.set_level Log.Debug;
  Log.debug "d%d" 4;
  Log.info "i%d" 5;
  Alcotest.(check int) "debug level passes everything" 3 (List.length !seen);
  Alcotest.(check bool) "debug text" true (List.mem (Log.Debug, "d4") !seen);
  Alcotest.(check bool) "info text" true (List.mem (Log.Info, "i5") !seen)

(* ----- metrics dump is stable ----- *)

let test_metrics_dump () =
  Trace.Metrics.reset ();
  Trace.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.Metrics.disable ();
      Trace.Metrics.reset ())
  @@ fun () ->
  Trace.Metrics.incr "b.count";
  Trace.Metrics.incr ~by:4 "b.count";
  Trace.Metrics.incr "a.count";
  Trace.Metrics.observe "a.hist" 2.0;
  Trace.Metrics.observe "a.hist" 4.0;
  Alcotest.(check string) "stable sorted dump"
    "counter a.count 1\ncounter b.count 5\nhistogram a.hist n=2 sum=6 min=2 max=4\n"
    (Trace.Metrics.dump ())

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "json export is Perfetto-shaped" `Quick test_json_shape;
          Alcotest.test_case "device track identical across jobs" `Quick
            test_device_track_determinism;
          Alcotest.test_case "per-pattern rewrite hits" `Quick test_pattern_hits;
          Alcotest.test_case "upmem report unperturbed by tracing" `Quick
            test_report_unperturbed;
          Alcotest.test_case "cim report unperturbed by tracing" `Quick
            test_cim_report_unperturbed;
          Alcotest.test_case "failing pass still gets a span" `Quick
            test_failing_pass_span;
          Alcotest.test_case "disabled tracing is a no-op" `Quick test_disabled_noop;
        ] );
      ( "log",
        [ Alcotest.test_case "leveled logger thresholds" `Quick test_log_levels ] );
      ( "metrics",
        [ Alcotest.test_case "stable text dump" `Quick test_metrics_dump ] );
    ]
