(* Differential i8/i16 wrap tests: narrow-width store/load round trips and
   signed-boundary arithmetic must be bit-identical between the tree walker
   and the compiled backend, and must match pinned values derived from the
   Tensor.wrap reference semantics. *)

open Cinm_ir
open Cinm_dialects
open Cinm_interp
module T = Types

let () = Registry.ensure_all ()

let with_backend backend f =
  let prev = Compile.backend () in
  Compile.set_backend backend;
  Fun.protect ~finally:(fun () -> Compile.set_backend prev) f

let run1 build =
  let f = build () in
  match Compile.run_func f [] with
  | [ v ], _ -> Rtval.as_int v
  | vs, _ -> Alcotest.failf "expected 1 result, got %d" (List.length vs)

(* Run [build] under both backends; they must agree with each other and
   with the pinned [expected] value. The func is rebuilt per backend so
   each one compiles/walks fresh IR. *)
let differential name build expected =
  let tree = with_backend Compile.Tree (fun () -> run1 build) in
  let compiled = with_backend Compile.Compiled (fun () -> run1 build) in
  Alcotest.(check int) (name ^ ": tree = compiled") tree compiled;
  Alcotest.(check int) (name ^ ": pinned") expected tree

(* Store an i32-typed constant into a 1-element memref of [dtype] and load
   it back: the store must truncate, the load must sign-extend. *)
let store_load dtype v () =
  let f =
    Func.create ~name:"store_load" ~arg_tys:[] ~result_tys:[ T.Scalar dtype ]
  in
  let b = Builder.for_func f in
  let m = Memref_d.alloc b [| 1 |] dtype in
  let i0 = Arith.const_index b 0 in
  Memref_d.store b (Arith.constant b v) m [ i0 ];
  Func_d.return b [ Memref_d.load b m [ i0 ] ];
  f

(* Boundary arithmetic in the narrow type itself: addi/muli on i8/i16
   scalars wrap at the declared width. *)
let arith_boundary dtype a op bv () =
  let ty = T.Scalar dtype in
  let f = Func.create ~name:"arith_boundary" ~arg_tys:[] ~result_tys:[ ty ] in
  let b = Builder.for_func f in
  let ca = Arith.constant b ~ty a and cb = Arith.constant b ~ty bv in
  let r = match op with `Add -> Arith.addi b ca cb | `Mul -> Arith.muli b ca cb in
  Func_d.return b [ r ];
  f

(* Loop round trip: store wrap32(i*scale + off) into a [dtype] memref for
   every i, then re-load and accumulate into a [dtype]-typed running sum
   (so the accumulation itself also wraps at the narrow width). *)
let roundtrip dtype n scale off () =
  let ty = T.Scalar dtype in
  let f = Func.create ~name:"roundtrip" ~arg_tys:[] ~result_tys:[ ty ] in
  let b = Builder.for_func f in
  let m = Memref_d.alloc b [| n |] dtype in
  let c0 = Arith.const_index b 0
  and c1 = Arith.const_index b 1
  and cn = Arith.const_index b n in
  let cscale = Arith.constant b scale and coff = Arith.constant b off in
  Scf_d.for0 b ~lb:c0 ~ub:cn ~step:c1 (fun bb i ->
      let iv = Arith.index_cast bb i ~to_ty:(T.Scalar T.I32) in
      Memref_d.store bb (Arith.addi bb (Arith.muli bb iv cscale) coff) m [ i ]);
  let init = Arith.constant b ~ty 0 in
  let sum =
    Scf_d.for_ b ~lb:c0 ~ub:cn ~step:c1 ~init:[ init ] (fun bb i iters ->
        [ Arith.addi bb iters.(0) (Memref_d.load bb m [ i ]) ])
  in
  Func_d.return b [ List.hd sum ];
  f

let expected_roundtrip dtype n scale off =
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let stored = Tensor.wrap dtype (Tensor.wrap T.I32 ((i * scale) + off)) in
    sum := Tensor.wrap dtype (!sum + stored)
  done;
  !sum

let test_i8_store_load () =
  differential "i8 store 128" (store_load T.I8 128) (-128);
  differential "i8 store 130" (store_load T.I8 130) (-126);
  differential "i8 store -129" (store_load T.I8 (-129)) 127;
  differential "i8 store 255" (store_load T.I8 255) (-1)

let test_i16_store_load () =
  differential "i16 store 32768" (store_load T.I16 32768) (-32768);
  differential "i16 store 40000" (store_load T.I16 40000) (-25536);
  differential "i16 store -32769" (store_load T.I16 (-32769)) 32767

let test_i8_arith_boundary () =
  differential "i8 127+1" (arith_boundary T.I8 127 `Add 1) (-128);
  differential "i8 -128 + -1" (arith_boundary T.I8 (-128) `Add (-1)) 127;
  differential "i8 16*16" (arith_boundary T.I8 16 `Mul 16) 0

let test_i16_arith_boundary () =
  differential "i16 32767+1" (arith_boundary T.I16 32767 `Add 1) (-32768);
  differential "i16 300*300" (arith_boundary T.I16 300 `Mul 300) 24464

let test_i8_roundtrip () =
  differential "i8 roundtrip"
    (roundtrip T.I8 16 37 100)
    (expected_roundtrip T.I8 16 37 100)

let test_i16_roundtrip () =
  differential "i16 roundtrip"
    (roundtrip T.I16 16 1000 30000)
    (expected_roundtrip T.I16 16 1000 30000)

let () =
  Alcotest.run "wrap"
    [
      ( "store-load",
        [
          Alcotest.test_case "i8 boundaries" `Quick test_i8_store_load;
          Alcotest.test_case "i16 boundaries" `Quick test_i16_store_load;
        ] );
      ( "arith",
        [
          Alcotest.test_case "i8 boundaries" `Quick test_i8_arith_boundary;
          Alcotest.test_case "i16 boundaries" `Quick test_i16_arith_boundary;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "i8" `Quick test_i8_roundtrip;
          Alcotest.test_case "i16" `Quick test_i16_roundtrip;
        ] );
    ]
